package models

import (
	"fmt"
	"math"
)

// InterveningOpportunities is Schneider's intervening-opportunities model,
// added as an extension baseline beyond the paper's two models (the paper
// positions Radiation as the parameter-free heir of this family):
//
//	P_ij ∝ C · [exp(−L·s_ij) − exp(−L·(s_ij + n_j))]
//
// where s_ij is the same intervening population used by Radiation and L is
// a per-dataset rate fitted by one-dimensional least squares in log space
// (golden-section search), with C the geometric-mean offset.
type InterveningOpportunities struct {
	C      float64
	L      float64
	fitted bool
}

// Name implements Model.
func (o *InterveningOpportunities) Name() string { return "Intervening Opp." }

// kernel evaluates the structural part for a given L.
func (o *InterveningOpportunities) kernelAt(od *OD, i, j int, l float64) float64 {
	if od.Pop[i] <= 0 || od.Pop[j] <= 0 {
		return 0
	}
	s := od.S[i][j]
	v := math.Exp(-l*s) - math.Exp(-l*(s+od.Pop[j]))
	if v < 0 {
		return 0
	}
	return v
}

// Fit implements Model: golden-section search on L minimising the log-space
// residual sum of squares, then a closed-form C.
func (o *InterveningOpportunities) Fit(od *OD) error {
	is, js := od.positivePairs()
	if len(is) < 3 {
		return fmt.Errorf("models: intervening opportunities needs >= 3 positive pairs, got %d", len(is))
	}
	// Scale-aware bracket for L: the kernel saturates when L·s ~ 1, so
	// bracket around the reciprocal of the typical intervening population.
	var sSum float64
	var sCount int
	for k := range is {
		if s := od.S[is[k]][js[k]]; s > 0 {
			sSum += s
			sCount++
		}
	}
	typical := 1.0
	if sCount > 0 {
		typical = sSum / float64(sCount)
	}
	if typical <= 0 {
		typical = 1
	}
	lo := 1e-4 / typical
	hi := 1e3 / typical

	loss := func(l float64) float64 {
		var sum, sumSq float64
		var n int
		for k := range is {
			i, j := is[k], js[k]
			kv := o.kernelAt(od, i, j, l)
			if kv <= 0 {
				// Heavy penalty: a usable L must give positive kernels.
				return math.Inf(1)
			}
			r := math.Log10(od.Flow[i][j]) - math.Log10(kv)
			sum += r
			sumSq += r * r
			n++
		}
		// RSS after removing the optimal constant offset.
		mean := sum / float64(n)
		return sumSq - float64(n)*mean*mean
	}
	l, err := goldenSection(loss, lo, hi, 200)
	if err != nil {
		return fmt.Errorf("models: intervening opportunities fit: %w", err)
	}
	// Closed-form C at the chosen L (geometric-mean offset).
	var sum float64
	var n int
	for k := range is {
		i, j := is[k], js[k]
		kv := o.kernelAt(od, i, j, l)
		if kv <= 0 {
			continue
		}
		sum += math.Log10(od.Flow[i][j]) - math.Log10(kv)
		n++
	}
	if n < 3 {
		return fmt.Errorf("models: intervening opportunities: only %d pairs with positive kernel at fitted L", n)
	}
	o.L = l
	o.C = math.Pow(10, sum/float64(n))
	o.fitted = true
	return nil
}

// Predict implements Model.
func (o *InterveningOpportunities) Predict(od *OD, i, j int) (float64, error) {
	if !o.fitted {
		return 0, ErrNotFitted
	}
	if i == j {
		return 0, fmt.Errorf("models: intervening opportunities predict: self-pair %d", i)
	}
	return o.C * o.kernelAt(od, i, j, o.L), nil
}

// goldenSection minimises f on [lo, hi] using golden-section search in log
// space (the bracket spans orders of magnitude), returning the argmin.
func goldenSection(f func(float64) float64, lo, hi float64, iters int) (float64, error) {
	if !(lo > 0) || !(hi > lo) {
		return 0, fmt.Errorf("models: golden section requires 0 < lo < hi, got [%v, %v]", lo, hi)
	}
	const phi = 0.6180339887498949 // (sqrt(5)-1)/2
	a, b := math.Log(lo), math.Log(hi)
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(math.Exp(c)), f(math.Exp(d))
	for i := 0; i < iters && math.Abs(b-a) > 1e-10; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(math.Exp(c))
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(math.Exp(d))
		}
	}
	x := math.Exp((a + b) / 2)
	if math.IsInf(f(x), 1) {
		return 0, fmt.Errorf("models: golden section found no feasible point")
	}
	return x, nil
}

// AllExtended returns the paper's three models plus the intervening-
// opportunities extension baseline.
func AllExtended() []Model {
	return append(All(), &InterveningOpportunities{})
}
