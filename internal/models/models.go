package models

import (
	"errors"
	"fmt"
	"math"

	"geomob/internal/linalg"
)

// Model is a mobility model that can be fitted to an OD dataset and then
// queried for pairwise flow predictions.
type Model interface {
	// Name returns the display name used in Table II.
	Name() string
	// Fit estimates the model parameters from the dataset.
	Fit(od *OD) error
	// Predict returns the estimated flow from area i to area j. The model
	// must have been fitted first.
	Predict(od *OD, i, j int) (float64, error)
}

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("models: model has not been fitted")

// Gravity4 is the 4-parameter gravity model of Eq. 1:
//
//	P ∝ C · m^α · n^β / d^γ
//
// fitted by ordinary least squares in log10 space over the positive pairs.
type Gravity4 struct {
	C      float64 // scaling constant (log10 intercept is log10 C)
	Alpha  float64 // origin population exponent
	Beta   float64 // destination population exponent
	Gamma  float64 // distance decay exponent
	fitted bool
}

// Name implements Model.
func (g *Gravity4) Name() string { return "Gravity 4Param" }

// Fit implements Model.
func (g *Gravity4) Fit(od *OD) error {
	is, js := od.positivePairs()
	if len(is) < 5 {
		return fmt.Errorf("models: gravity-4 needs >= 5 positive pairs, got %d", len(is))
	}
	design := make([][]float64, len(is))
	y := make([]float64, len(is))
	for k := range is {
		i, j := is[k], js[k]
		design[k] = []float64{
			1,
			math.Log10(od.Pop[i]),
			math.Log10(od.Pop[j]),
			math.Log10(od.DistKM[i][j]),
		}
		y[k] = math.Log10(od.Flow[i][j])
	}
	res, err := linalg.OLS(design, y)
	if err != nil {
		return fmt.Errorf("models: gravity-4 fit: %w", err)
	}
	g.C = math.Pow(10, res.Coef[0])
	g.Alpha = res.Coef[1]
	g.Beta = res.Coef[2]
	g.Gamma = -res.Coef[3]
	g.fitted = true
	return nil
}

// Predict implements Model.
func (g *Gravity4) Predict(od *OD, i, j int) (float64, error) {
	if !g.fitted {
		return 0, ErrNotFitted
	}
	if i == j {
		return 0, fmt.Errorf("models: gravity-4 predict: self-pair %d", i)
	}
	m, n, d := od.Pop[i], od.Pop[j], od.DistKM[i][j]
	if m <= 0 || n <= 0 || d <= 0 {
		return 0, nil
	}
	return g.C * math.Pow(m, g.Alpha) * math.Pow(n, g.Beta) / math.Pow(d, g.Gamma), nil
}

// Gravity2 is the 2-parameter gravity model of Eq. 2:
//
//	P ∝ C · m·n / d^γ
//
// fitted by simple least squares of (log10 F − log10 mn) on log10 d.
type Gravity2 struct {
	C      float64
	Gamma  float64
	fitted bool
}

// Name implements Model.
func (g *Gravity2) Name() string { return "Gravity 2Param" }

// Fit implements Model.
func (g *Gravity2) Fit(od *OD) error {
	is, js := od.positivePairs()
	if len(is) < 3 {
		return fmt.Errorf("models: gravity-2 needs >= 3 positive pairs, got %d", len(is))
	}
	x := make([]float64, len(is))
	y := make([]float64, len(is))
	for k := range is {
		i, j := is[k], js[k]
		x[k] = math.Log10(od.DistKM[i][j])
		y[k] = math.Log10(od.Flow[i][j]) - math.Log10(od.Pop[i]*od.Pop[j])
	}
	intercept, slope, err := linalg.SimpleOLS(x, y)
	if err != nil {
		return fmt.Errorf("models: gravity-2 fit: %w", err)
	}
	g.C = math.Pow(10, intercept)
	g.Gamma = -slope
	g.fitted = true
	return nil
}

// Predict implements Model.
func (g *Gravity2) Predict(od *OD, i, j int) (float64, error) {
	if !g.fitted {
		return 0, ErrNotFitted
	}
	if i == j {
		return 0, fmt.Errorf("models: gravity-2 predict: self-pair %d", i)
	}
	m, n, d := od.Pop[i], od.Pop[j], od.DistKM[i][j]
	if m <= 0 || n <= 0 || d <= 0 {
		return 0, nil
	}
	return g.C * m * n / math.Pow(d, g.Gamma), nil
}

// Radiation is the parameter-free radiation model of Eq. 3 up to a single
// scaling constant C:
//
//	P ∝ C · m·n / ((m+s)(m+n+s))
//
// where s is the population within the origin-centred disc of radius d,
// excluding origin and destination. C is fitted as the geometric-mean
// offset in log10 space, consistent with the log-scale evaluation.
type Radiation struct {
	C      float64
	fitted bool
}

// Name implements Model.
func (r *Radiation) Name() string { return "Radiation" }

// kernel returns the parameter-free part of Eq. 3.
func (r *Radiation) kernel(od *OD, i, j int) float64 {
	m, n := od.Pop[i], od.Pop[j]
	if m <= 0 || n <= 0 {
		return 0
	}
	s := od.S[i][j]
	den := (m + s) * (m + n + s)
	if den <= 0 {
		return 0
	}
	return m * n / den
}

// Fit implements Model.
func (r *Radiation) Fit(od *OD) error {
	is, js := od.positivePairs()
	if len(is) < 3 {
		return fmt.Errorf("models: radiation needs >= 3 positive pairs, got %d", len(is))
	}
	var sum float64
	var count int
	for k := range is {
		i, j := is[k], js[k]
		kv := r.kernel(od, i, j)
		if kv <= 0 {
			continue
		}
		sum += math.Log10(od.Flow[i][j]) - math.Log10(kv)
		count++
	}
	if count < 3 {
		return fmt.Errorf("models: radiation has only %d pairs with positive kernel", count)
	}
	r.C = math.Pow(10, sum/float64(count))
	r.fitted = true
	return nil
}

// Predict implements Model.
func (r *Radiation) Predict(od *OD, i, j int) (float64, error) {
	if !r.fitted {
		return 0, ErrNotFitted
	}
	if i == j {
		return 0, fmt.Errorf("models: radiation predict: self-pair %d", i)
	}
	return r.C * r.kernel(od, i, j), nil
}

// All returns fresh instances of the three models in the paper's column
// order: Gravity 4Param, Gravity 2Param, Radiation.
func All() []Model {
	return []Model{&Gravity4{}, &Gravity2{}, &Radiation{}}
}
