package models

import (
	"math"
	"testing"
)

func TestInterveningOpportunitiesFitAndPredict(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2.0, 0.2, 51)
	m := &InterveningOpportunities{}
	if err := m.Fit(od); err != nil {
		t.Fatal(err)
	}
	if m.L <= 0 || m.C <= 0 {
		t.Fatalf("degenerate parameters: L=%v C=%v", m.L, m.C)
	}
	met, err := Evaluate(od, m)
	if err != nil {
		t.Fatal(err)
	}
	// A structurally different model still has to produce a meaningful
	// positive correlation on gravity-world data.
	if met.PearsonLog < 0.2 {
		t.Errorf("r = %.3f too weak", met.PearsonLog)
	}
	if met.CPC <= 0 || met.CPC > 1 {
		t.Errorf("CPC out of range: %v", met.CPC)
	}
}

func TestInterveningOpportunitiesBeforeFit(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2, 0.1, 53)
	m := &InterveningOpportunities{}
	if _, err := m.Predict(od, 0, 1); err == nil {
		t.Error("predict before fit should fail")
	}
	if err := m.Fit(od); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(od, 2, 2); err == nil {
		t.Error("self-pair should fail")
	}
}

func TestGoldenSectionFindsMinimum(t *testing.T) {
	// f(x) = (log10 x − 1)² has its minimum at x = 10.
	f := func(x float64) float64 {
		d := math.Log10(x) - 1
		return d * d
	}
	x, err := goldenSection(f, 0.01, 1e4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-10) > 0.01 {
		t.Errorf("argmin = %v, want 10", x)
	}
	if _, err := goldenSection(f, -1, 1, 100); err == nil {
		t.Error("negative bracket should fail")
	}
	if _, err := goldenSection(f, 2, 1, 100); err == nil {
		t.Error("inverted bracket should fail")
	}
}

func TestGoldenSectionInfeasible(t *testing.T) {
	inf := func(float64) float64 { return math.Inf(1) }
	if _, err := goldenSection(inf, 1, 10, 50); err == nil {
		t.Error("all-infeasible loss should fail")
	}
}

func TestCommonPartOfCommuters(t *testing.T) {
	cpc, err := CommonPartOfCommuters([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || cpc != 1 {
		t.Errorf("identical flows: cpc=%v err=%v", cpc, err)
	}
	cpc, err = CommonPartOfCommuters([]float64{10, 0}, []float64{0, 10})
	if err != nil || cpc != 0 {
		t.Errorf("disjoint flows: cpc=%v err=%v", cpc, err)
	}
	cpc, err = CommonPartOfCommuters([]float64{5}, []float64{10})
	if err != nil || math.Abs(cpc-2.0/3.0) > 1e-12 {
		t.Errorf("partial overlap: cpc=%v err=%v", cpc, err)
	}
	if _, err := CommonPartOfCommuters([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := CommonPartOfCommuters([]float64{-1}, []float64{1}); err == nil {
		t.Error("negative flow should fail")
	}
	if _, err := CommonPartOfCommuters([]float64{0}, []float64{0}); err == nil {
		t.Error("all-zero flows should fail")
	}
}

func TestAllExtendedIncludesOpportunities(t *testing.T) {
	ms := AllExtended()
	if len(ms) != 4 {
		t.Fatalf("%d models", len(ms))
	}
	if ms[3].Name() != "Intervening Opp." {
		t.Errorf("fourth model = %q", ms[3].Name())
	}
}

func TestGravityStillBeatsOpportunitiesOnGravityWorld(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2.0, 0.3, 57)
	g2 := &Gravity2{}
	if err := g2.Fit(od); err != nil {
		t.Fatal(err)
	}
	io := &InterveningOpportunities{}
	if err := io.Fit(od); err != nil {
		t.Fatal(err)
	}
	gm, err := Evaluate(od, g2)
	if err != nil {
		t.Fatal(err)
	}
	om, err := Evaluate(od, io)
	if err != nil {
		t.Fatal(err)
	}
	if om.PearsonLog >= gm.PearsonLog {
		t.Errorf("opportunities (r=%.3f) should not beat gravity (r=%.3f) on gravity data",
			om.PearsonLog, gm.PearsonLog)
	}
}
