package models

import (
	"math"
	"math/rand/v2"
	"testing"

	"geomob/internal/census"
	"geomob/internal/geo"
)

// syntheticOD builds an OD dataset whose flows follow a known gravity law
// F = C·m^α·n^β/d^γ with multiplicative lognormal noise.
func syntheticOD(t *testing.T, c, alpha, beta, gamma, noise float64, seed uint64) *OD {
	t.Helper()
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pop := rs.Populations()
	// Scale down to "Twitter population" magnitudes.
	for i := range pop {
		pop[i] /= 100
	}
	n := len(pop)
	flow := make([][]float64, n)
	for i := range flow {
		flow[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := geo.Haversine(rs.Areas[i].Center, rs.Areas[j].Center) / 1000
			mean := c * math.Pow(pop[i], alpha) * math.Pow(pop[j], beta) / math.Pow(d, gamma)
			f := mean * math.Exp(rng.NormFloat64()*noise)
			flow[i][j] = math.Round(f)
		}
	}
	od, err := BuildOD(rs.Areas, pop, flow)
	if err != nil {
		t.Fatal(err)
	}
	return od
}

func TestBuildODValidation(t *testing.T) {
	rs, _ := census.Australia().Regions(census.ScaleNational)
	pop := rs.Populations()
	n := len(pop)
	flow := make([][]float64, n)
	for i := range flow {
		flow[i] = make([]float64, n)
	}
	if _, err := BuildOD(rs.Areas[:2], pop[:2], flow[:2]); err == nil {
		t.Error("too few areas should fail")
	}
	if _, err := BuildOD(rs.Areas, pop[:5], flow); err == nil {
		t.Error("population length mismatch should fail")
	}
	if _, err := BuildOD(rs.Areas, pop, flow[:5]); err == nil {
		t.Error("flow length mismatch should fail")
	}
	ragged := make([][]float64, n)
	for i := range ragged {
		ragged[i] = make([]float64, 3)
	}
	if _, err := BuildOD(rs.Areas, pop, ragged); err == nil {
		t.Error("ragged flow matrix should fail")
	}
	negPop := append([]float64(nil), pop...)
	negPop[0] = -1
	if _, err := BuildOD(rs.Areas, negPop, flow); err == nil {
		t.Error("negative population should fail")
	}
}

func TestODSTermProperties(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2, 0, 7)
	n := od.N()
	var total float64
	for _, p := range od.Pop {
		total += p
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s := od.S[i][j]
			if s < 0 {
				t.Fatalf("negative s at (%d,%d)", i, j)
			}
			// s excludes origin and destination.
			if s > total-od.Pop[i]-od.Pop[j]+1e-9 {
				t.Fatalf("s too large at (%d,%d): %v", i, j, s)
			}
		}
	}
	// s must be monotone in distance for a fixed origin (larger discs
	// contain at least as much population, modulo the excluded target).
	for i := 0; i < n; i++ {
		type dj struct {
			d, s, pop float64
		}
		var list []dj
		for j := 0; j < n; j++ {
			if i != j {
				list = append(list, dj{od.DistKM[i][j], od.S[i][j], od.Pop[j]})
			}
		}
		for a := range list {
			for b := range list {
				if list[a].d < list[b].d {
					// s_b plus its own excluded destination must cover s_a
					// minus a's excluded destination; allow the excluded
					// masses as slack.
					if list[a].s > list[b].s+list[a].pop+list[b].pop+1e-9 {
						t.Fatalf("s not monotone from origin %d: d=%v s=%v vs d=%v s=%v",
							i, list[a].d, list[a].s, list[b].d, list[b].s)
					}
				}
			}
		}
	}
}

func TestSydneyMelbourneSTermIsSparse(t *testing.T) {
	// The paper's core geographic argument: Australia's population is
	// coastal and sparse, so s(Sydney→Melbourne) is small relative to the
	// total — unlike a uniformly settled country.
	rs, _ := census.Australia().Regions(census.ScaleNational)
	pop := rs.Populations()
	n := len(pop)
	flow := make([][]float64, n)
	for i := range flow {
		flow[i] = make([]float64, n)
		for j := range flow[i] {
			if i != j {
				flow[i][j] = 1
			}
		}
	}
	od, err := BuildOD(rs.Areas, pop, flow)
	if err != nil {
		t.Fatal(err)
	}
	syd := rs.Index("Sydney")
	mel := rs.Index("Melbourne")
	var total float64
	for _, p := range pop {
		total += p
	}
	s := od.S[syd][mel]
	if s/total > 0.25 {
		t.Errorf("s(Sydney→Melbourne)/total = %.2f — too dense for the sparse-Australia argument", s/total)
	}
}

func TestGravity4RecoversPlantedParameters(t *testing.T) {
	trueC, trueAlpha, trueBeta, trueGamma := 8.0, 0.9, 1.1, 2.0
	od := syntheticOD(t, trueC, trueAlpha, trueBeta, trueGamma, 0.05, 11)
	g := &Gravity4{}
	if err := g.Fit(od); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Alpha-trueAlpha) > 0.1 {
		t.Errorf("alpha = %v, want %v", g.Alpha, trueAlpha)
	}
	if math.Abs(g.Beta-trueBeta) > 0.1 {
		t.Errorf("beta = %v, want %v", g.Beta, trueBeta)
	}
	if math.Abs(g.Gamma-trueGamma) > 0.15 {
		t.Errorf("gamma = %v, want %v", g.Gamma, trueGamma)
	}
}

func TestGravity2RecoversGamma(t *testing.T) {
	od := syntheticOD(t, 1.0, 1, 1, 1.7, 0.05, 13)
	g := &Gravity2{}
	if err := g.Fit(od); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Gamma-1.7) > 0.12 {
		t.Errorf("gamma = %v, want 1.7", g.Gamma)
	}
}

func TestModelsPredictBeforeFit(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2, 0, 17)
	for _, m := range All() {
		if _, err := m.Predict(od, 0, 1); err == nil {
			t.Errorf("%s: predict before fit should fail", m.Name())
		}
	}
}

func TestModelsSelfPairRejected(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2, 0.01, 19)
	for _, m := range All() {
		if err := m.Fit(od); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if _, err := m.Predict(od, 3, 3); err == nil {
			t.Errorf("%s: self-pair predict should fail", m.Name())
		}
	}
}

func TestGravityBeatsRadiationOnGravityWorld(t *testing.T) {
	// Flows generated by a gravity law with Australia's geography: the
	// gravity models must dominate radiation, reproducing Table II's
	// ordering.
	od := syntheticOD(t, 10, 1, 1, 2.0, 0.3, 23)
	scores := map[string]*Metrics{}
	for _, m := range All() {
		if err := m.Fit(od); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		met, err := Evaluate(od, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		scores[m.Name()] = met
	}
	g2 := scores["Gravity 2Param"]
	g4 := scores["Gravity 4Param"]
	rad := scores["Radiation"]
	if g2.PearsonLog <= rad.PearsonLog {
		t.Errorf("gravity-2 (r=%.3f) should beat radiation (r=%.3f)", g2.PearsonLog, rad.PearsonLog)
	}
	if g4.PearsonLog <= rad.PearsonLog {
		t.Errorf("gravity-4 (r=%.3f) should beat radiation (r=%.3f)", g4.PearsonLog, rad.PearsonLog)
	}
	if g2.HitRate50 <= rad.HitRate50 {
		t.Errorf("gravity-2 hitrate (%.3f) should beat radiation (%.3f)", g2.HitRate50, rad.HitRate50)
	}
	// All models must stay in the paper's plausible Pearson band.
	for name, met := range scores {
		if met.PearsonLog < 0.3 || met.PearsonLog > 1 {
			t.Errorf("%s: r=%.3f outside plausibility band", name, met.PearsonLog)
		}
	}
}

func TestEvaluateHitRateBounds(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2, 0.1, 29)
	g := &Gravity4{}
	if err := g.Fit(od); err != nil {
		t.Fatal(err)
	}
	met, err := Evaluate(od, g)
	if err != nil {
		t.Fatal(err)
	}
	if met.HitRate50 < 0 || met.HitRate50 > 1 {
		t.Errorf("hitrate out of bounds: %v", met.HitRate50)
	}
	if met.N == 0 {
		t.Error("no pairs evaluated")
	}
	if met.RMSELog < 0 {
		t.Errorf("negative RMSE: %v", met.RMSELog)
	}
}

func TestPerfectGravityDataGivesNearPerfectScores(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2.0, 0, 31) // zero noise
	g := &Gravity2{}
	if err := g.Fit(od); err != nil {
		t.Fatal(err)
	}
	met, err := Evaluate(od, g)
	if err != nil {
		t.Fatal(err)
	}
	// Rounding to integer flows is the only distortion.
	if met.PearsonLog < 0.98 {
		t.Errorf("noiseless gravity fit r=%.4f, want ~1", met.PearsonLog)
	}
}

func TestScatterSeries(t *testing.T) {
	od := syntheticOD(t, 10, 1, 1, 2, 0.2, 37)
	g := &Gravity2{}
	if err := g.Fit(od); err != nil {
		t.Fatal(err)
	}
	est, obs, binned, err := ScatterSeries(od, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != len(obs) || len(est) == 0 {
		t.Fatalf("scatter lengths: %d vs %d", len(est), len(obs))
	}
	if len(binned) == 0 {
		t.Fatal("no binned points")
	}
	for _, b := range binned {
		if b.Count <= 0 || b.MeanY <= 0 {
			t.Errorf("degenerate bin: %+v", b)
		}
	}
}

func TestRadiationKernelIsScaleFree(t *testing.T) {
	// Multiplying all populations by a constant must leave the radiation
	// kernel unchanged (m·n/((m+s)(m+n+s)) is homogeneous of degree 0).
	od1 := syntheticOD(t, 10, 1, 1, 2, 0.01, 41)
	rad := &Radiation{}
	if err := rad.Fit(od1); err != nil {
		t.Fatal(err)
	}
	k1 := rad.kernel(od1, 0, 1)
	scaled := make([]float64, len(od1.Pop))
	for i, p := range od1.Pop {
		scaled[i] = p * 7
	}
	od2, err := BuildOD(od1.Areas, scaled, od1.Flow)
	if err != nil {
		t.Fatal(err)
	}
	k2 := rad.kernel(od2, 0, 1)
	if math.Abs(k1-k2) > 1e-12 {
		t.Errorf("radiation kernel not scale-free: %v vs %v", k1, k2)
	}
}

func TestAllReturnsPaperOrder(t *testing.T) {
	ms := All()
	if len(ms) != 3 {
		t.Fatalf("All() returned %d models", len(ms))
	}
	want := []string{"Gravity 4Param", "Gravity 2Param", "Radiation"}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Errorf("model %d = %q, want %q", i, m.Name(), want[i])
		}
	}
}
