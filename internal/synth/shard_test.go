package synth

import (
	"testing"

	"geomob/internal/tweet"
)

func TestGenerateRangeConcatEqualsGenerate(t *testing.T) {
	g, err := NewGenerator(testConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	full, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	var concat []tweet.Tweet
	for _, r := range [][2]int{{0, 100}, {100, 101}, {101, 350}, {350, 350}, {350, 500}} {
		if _, err := g.GenerateRange(r[0], r[1], func(tw tweet.Tweet) error {
			concat = append(concat, tw)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(concat) != len(full) {
		t.Fatalf("ranges produced %d tweets, Generate %d", len(concat), len(full))
	}
	for i := range full {
		if concat[i] != full[i] {
			t.Fatalf("tweet %d differs: %+v vs %+v", i, concat[i], full[i])
		}
	}
}

func TestGenerateRangeRejectsBadBounds(t *testing.T) {
	g, err := NewGenerator(testConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 5}, {0, 11}, {7, 3}} {
		if _, err := g.GenerateRange(r[0], r[1], func(tweet.Tweet) error { return nil }); err == nil {
			t.Errorf("range [%d, %d) should be rejected", r[0], r[1])
		}
	}
}

func TestShardsConcatEqualsGenerate(t *testing.T) {
	g, err := NewGenerator(testConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	full, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 7, 1000} {
		shards, err := g.Shards(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) == 0 || len(shards) > n {
			t.Fatalf("n=%d: %d shards", n, len(shards))
		}
		var concat []tweet.Tweet
		for _, sh := range shards {
			if err := sh.Each(func(tw tweet.Tweet) error {
				concat = append(concat, tw)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if len(concat) != len(full) {
			t.Fatalf("n=%d: shards produced %d tweets, Generate %d", n, len(concat), len(full))
		}
		for i := range full {
			if concat[i] != full[i] {
				t.Fatalf("n=%d: tweet %d differs", n, i)
			}
		}
	}
}
