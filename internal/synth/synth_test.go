package synth

import (
	"errors"
	"math"
	"sort"
	"testing"
	"time"

	"geomob/internal/geo"
	"geomob/internal/stats"
	"geomob/internal/tweet"
)

func testConfig(users int) Config {
	return DefaultConfig(users, 42, 43)
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(100).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumUsers = 0 },
		func(c *Config) { c.End = c.Start },
		func(c *Config) { c.ActivityAlpha = 1 },
		func(c *Config) { c.MaxTweetsPerUser = 0 },
		func(c *Config) { c.GapAlpha = 0 },
		func(c *Config) { c.GapMinSeconds = 0 },
		func(c *Config) { c.GapMaxSeconds = c.GapMinSeconds },
		func(c *Config) { c.GapCapFactor = 0 },
		func(c *Config) { c.Gamma = -1 },
		func(c *Config) { c.MoveProb = 1.5 },
		func(c *Config) { c.ReturnProb = -0.1 },
		func(c *Config) { c.NoiseProb = 2 },
		func(c *Config) { c.PenetrationSigma = -1 },
	}
	for i, mut := range mutations {
		c := testConfig(100)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the config", i)
		}
	}
}

func TestWorldModelSites(t *testing.T) {
	g, err := NewGenerator(testConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	sites := g.Sites()
	// 19 national (Sydney decomposed) + 16 extra NSW + 20 suburbs + rest.
	if len(sites) < 50 {
		t.Errorf("world has %d sites, expected >= 50", len(sites))
	}
	names := map[string]bool{}
	var totalWeight float64
	for _, s := range sites {
		if names[s.Name] {
			t.Errorf("duplicate site %q", s.Name)
		}
		names[s.Name] = true
		if s.Weight <= 0 || s.Bias <= 0 || s.Sigma <= 0 {
			t.Errorf("site %q has non-positive parameters: %+v", s.Name, s)
		}
		if !geo.AustraliaBBox.Contains(s.Center) {
			t.Errorf("site %q outside the study region", s.Name)
		}
		totalWeight += s.Weight
	}
	for _, want := range []string{"Melbourne", "Dubbo", "Blacktown", "Sydney (rest)"} {
		if !names[want] {
			t.Errorf("world model is missing %q", want)
		}
	}
	if names["Sydney"] {
		t.Error("Sydney itself must be decomposed, not a site")
	}
	// Total weight must be close to the union population (national total
	// plus the NSW additions).
	if totalWeight < 15e6 || totalWeight > 20e6 {
		t.Errorf("total site weight %.0f implausible", totalWeight)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := NewGenerator(testConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	a, err := g1.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g2.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tweet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must give a different corpus.
	cfg := testConfig(200)
	cfg.Seed1 = 999
	g3, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g3.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical corpora")
		}
	}
}

func TestGenerateStructuralInvariants(t *testing.T) {
	cfg := testConfig(2000)
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tweets) < cfg.NumUsers {
		t.Fatalf("only %d tweets for %d users", len(tweets), cfg.NumUsers)
	}
	startMS := cfg.Start.UnixMilli()
	endMS := cfg.End.UnixMilli()
	ids := map[int64]bool{}
	users := map[int64]bool{}
	for i, tw := range tweets {
		if err := tw.Validate(); err != nil {
			t.Fatalf("tweet %d invalid: %v", i, err)
		}
		if ids[tw.ID] {
			t.Fatalf("duplicate tweet id %d", tw.ID)
		}
		ids[tw.ID] = true
		users[tw.UserID] = true
		if tw.TS < startMS || tw.TS >= endMS {
			t.Fatalf("tweet %d outside the collection window", i)
		}
		if !geo.AustraliaBBox.Contains(tw.Point()) {
			t.Fatalf("tweet %d outside Australia: %v", i, tw.Point())
		}
	}
	if len(users) != cfg.NumUsers {
		t.Errorf("%d distinct users, want %d", len(users), cfg.NumUsers)
	}
	// The stream must already be in (user, time) order.
	if !sort.IsSorted(tweet.ByUserTime(tweets)) {
		t.Error("stream not in (user, time) order")
	}
}

func TestActivityDistributionHeavyTail(t *testing.T) {
	cfg := testConfig(20000)
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	if _, err := g.Generate(func(tw tweet.Tweet) error {
		counts[tw.UserID]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	perUser := make([]float64, 0, len(counts))
	var max float64
	for _, c := range counts {
		perUser = append(perUser, float64(c))
		if float64(c) > max {
			max = float64(c)
		}
	}
	mean, _ := stats.Mean(perUser)
	// Paper: 13.3 tweets/user on average. Accept the same regime.
	if mean < 5 || mean > 30 {
		t.Errorf("mean tweets/user = %.1f, want ~13", mean)
	}
	// Heavy tail: someone should tweet hundreds of times.
	if max < 300 {
		t.Errorf("max tweets/user = %v, tail too thin", max)
	}
	// MLE exponent on the tail should be near the configured 1.8.
	fit, err := stats.FitPowerLaw(perUser, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-cfg.ActivityAlpha) > 0.25 {
		t.Errorf("fitted activity alpha = %.2f, want ~%.2f", fit.Alpha, cfg.ActivityAlpha)
	}
}

func TestWaitingTimesSpanDecades(t *testing.T) {
	cfg := testConfig(5000)
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for i := 1; i < len(tweets); i++ {
		if tweets[i].UserID == tweets[i-1].UserID {
			if g := float64(tweets[i].TS-tweets[i-1].TS) / 1000; g > 0 {
				gaps = append(gaps, g)
			}
		}
	}
	if len(gaps) < 1000 {
		t.Fatalf("only %d gaps", len(gaps))
	}
	min, max, _ := stats.MinMax(gaps)
	if max/min < 1e4 {
		t.Errorf("waiting times span only %.1f decades, want >= 4", math.Log10(max/min))
	}
	mean, _ := stats.Mean(gaps)
	// Paper: average waiting time 35.5 hours = 127,800 s. Same regime.
	if mean < 3600 || mean > 100*3600 {
		t.Errorf("mean waiting time = %.0f s, want hours-to-days regime", mean)
	}
}

func TestPopulationProxyCorrelatesWithCensus(t *testing.T) {
	// Users' home assignment must track site weights: count tweets near the
	// five biggest cities and check the ordering is broadly preserved.
	cfg := testConfig(20000)
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cities := []struct {
		name   string
		center geo.Point
		pop    float64
	}{
		{"Sydney", geo.Point{Lat: -33.8688, Lon: 151.2093}, 4293000},
		{"Melbourne", geo.Point{Lat: -37.8136, Lon: 144.9631}, 4087000},
		{"Brisbane", geo.Point{Lat: -27.4698, Lon: 153.0251}, 2147000},
		{"Perth", geo.Point{Lat: -31.9523, Lon: 115.8613}, 1897000},
		{"Adelaide", geo.Point{Lat: -34.9285, Lon: 138.6007}, 1277000},
	}
	counts := make([]float64, len(cities))
	if _, err := g.Generate(func(tw tweet.Tweet) error {
		for i, c := range cities {
			if geo.Haversine(tw.Point(), c.center) < 50_000 {
				counts[i]++
				break
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pops := make([]float64, len(cities))
	for i, c := range cities {
		pops[i] = c.pop
	}
	r, err := stats.Pearson(counts, pops)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.7 {
		t.Errorf("tweet counts vs census correlation r = %.3f, want > 0.7", r)
	}
}

func TestEmitErrorAborts(t *testing.T) {
	g, err := NewGenerator(testConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	n := 0
	_, err = g.Generate(func(tweet.Tweet) error {
		n++
		if n >= 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("emit error not propagated: %v", err)
	}
	if n != 10 {
		t.Errorf("generation continued after error: %d emits", n)
	}
}

func TestNewGeneratorRejectsBadConfig(t *testing.T) {
	cfg := testConfig(10)
	cfg.NumUsers = -1
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestCollectionWindowMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(10, 1, 2)
	if cfg.Start.Month() != time.September || cfg.Start.Year() != 2013 {
		t.Errorf("default window start %v, want Sept 2013", cfg.Start)
	}
	if cfg.End.Month() != time.April || cfg.End.Year() != 2014 {
		t.Errorf("default window end %v, want Apr 2014", cfg.End)
	}
}
