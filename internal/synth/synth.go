// Package synth generates synthetic geo-tagged tweet streams that are
// statistically calibrated to the corpus described in the paper (Table I,
// Fig. 2): heavy-tailed per-user tweet counts, bursty inter-tweet waiting
// times spanning many decades, user home locations distributed according to
// census population with per-site Twitter-penetration bias, and inter-area
// trips driven by a ground-truth gravity kernel plus noise.
//
// This package is the substitution for the paper's 6.3M-tweet Twitter
// collection (Sept 2013 – Apr 2014), which cannot be redistributed; see
// DESIGN.md §1. Because the generator plants known ground truth (the
// gravity exponent, the per-site penetration bias), the downstream
// estimators can be *tested for recovery*, which the real corpus would not
// permit.
package synth

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/randx"
	"geomob/internal/tweet"
)

// Site is one population centre of the synthetic world: either a city, a
// Sydney suburb, or the "rest of Sydney" remainder that keeps Sydney's
// total weight equal to its census population.
type Site struct {
	Name   string
	Center geo.Point
	Weight float64 // census population share represented by this site
	Bias   float64 // Twitter penetration multiplier (lognormal, planted)
	// Sigma is the spread (metres) of resident anchor points around the
	// centre: a user living at a site is pinned to a fixed anchor drawn
	// from this 2-D Gaussian, and their tweets jitter only tightly around
	// the anchor. This reproduces the paper's §III "edge sensitivity":
	// small search radii only capture the residents anchored near the
	// area centre.
	Sigma float64
}

// anchorTweetJitter returns the per-tweet GPS jitter around a user's
// anchor at this site, metres.
func (s Site) anchorTweetJitter() float64 {
	j := s.Sigma / 3
	if j > 400 {
		j = 400
	}
	if j < 50 {
		j = 50
	}
	return j
}

// Config parameterises a synthetic corpus. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	Seed1, Seed2 uint64 // PCG seed pair; the corpus is a pure function of the config

	NumUsers int // number of distinct users

	Start time.Time // collection window start (inclusive)
	End   time.Time // collection window end

	// Per-user tweet-count power law P(n) ∝ n^(−ActivityAlpha) on
	// [1, MaxTweetsPerUser] (Fig. 2a; the paper measures a mean of 13.3
	// tweets/user with maxima in the tens of thousands).
	ActivityAlpha    float64
	MaxTweetsPerUser int

	// Inter-tweet waiting times ~ bounded Pareto with exponent GapAlpha on
	// [GapMinSeconds, GapMaxSeconds], additionally capped per user at
	// GapCapFactor·period/n so that heavy tweeters fit the collection
	// window while their lifespans still cover most of it (Fig. 2b;
	// calibrated against Table I's 35.5 h average waiting time).
	GapAlpha      float64
	GapMinSeconds float64
	GapMaxSeconds float64
	GapCapFactor  float64

	// Movement model.
	Gamma            float64 // ground-truth gravity distance exponent
	MoveProb         float64 // probability a tweet event relocates the user
	ReturnProb       float64 // probability a relocation returns the user home
	NoiseProb        float64 // probability a tweet is at a uniform random point
	PenetrationSigma float64 // lognormal sigma of per-site Twitter bias
}

// DefaultConfig returns the calibrated configuration with the given user
// count and seeds. The full-size corpus uses 473,956 users (Table I); tests
// and examples scale NumUsers down.
func DefaultConfig(numUsers int, seed1, seed2 uint64) Config {
	return Config{
		Seed1:            seed1,
		Seed2:            seed2,
		NumUsers:         numUsers,
		Start:            time.Date(2013, time.September, 1, 0, 0, 0, 0, time.UTC),
		End:              time.Date(2014, time.April, 1, 0, 0, 0, 0, time.UTC),
		ActivityAlpha:    1.8,
		MaxTweetsPerUser: 10000,
		GapAlpha:         1.05,
		GapMinSeconds:    1,
		GapMaxSeconds:    90 * 24 * 3600,
		GapCapFactor:     30,
		Gamma:            2.0,
		MoveProb:         0.15,
		ReturnProb:       0.3,
		NoiseProb:        0.02,
		PenetrationSigma: 0.35,
	}
}

// Validate reports the first configuration problem, if any.
func (c Config) Validate() error {
	switch {
	case c.NumUsers <= 0:
		return fmt.Errorf("synth: NumUsers must be positive, got %d", c.NumUsers)
	case !c.End.After(c.Start):
		return fmt.Errorf("synth: End %v must be after Start %v", c.End, c.Start)
	case c.ActivityAlpha <= 1:
		return fmt.Errorf("synth: ActivityAlpha must exceed 1, got %v", c.ActivityAlpha)
	case c.MaxTweetsPerUser < 1:
		return fmt.Errorf("synth: MaxTweetsPerUser must be >= 1, got %d", c.MaxTweetsPerUser)
	case c.GapAlpha <= 0:
		return fmt.Errorf("synth: GapAlpha must be positive, got %v", c.GapAlpha)
	case c.GapMinSeconds <= 0 || c.GapMaxSeconds <= c.GapMinSeconds:
		return fmt.Errorf("synth: need 0 < GapMinSeconds < GapMaxSeconds, got %v, %v", c.GapMinSeconds, c.GapMaxSeconds)
	case c.GapCapFactor <= 0:
		return fmt.Errorf("synth: GapCapFactor must be positive, got %v", c.GapCapFactor)
	case c.Gamma < 0:
		return fmt.Errorf("synth: Gamma must be non-negative, got %v", c.Gamma)
	case c.MoveProb < 0 || c.MoveProb > 1:
		return fmt.Errorf("synth: MoveProb must lie in [0,1], got %v", c.MoveProb)
	case c.ReturnProb < 0 || c.ReturnProb > 1:
		return fmt.Errorf("synth: ReturnProb must lie in [0,1], got %v", c.ReturnProb)
	case c.NoiseProb < 0 || c.NoiseProb > 1:
		return fmt.Errorf("synth: NoiseProb must lie in [0,1], got %v", c.NoiseProb)
	case c.PenetrationSigma < 0:
		return fmt.Errorf("synth: PenetrationSigma must be >= 0, got %v", c.PenetrationSigma)
	}
	return nil
}

// Generator produces tweet streams for a config over the embedded
// Australian world model.
type Generator struct {
	cfg   Config
	sites []Site
	// gravityFrom[i] is the weighted-choice sampler over destination sites
	// for a user currently at site i (gravity kernel, built lazily).
	gravityFrom []*randx.WeightedChoice
	homeChooser *randx.WeightedChoice
}

// NewGenerator builds the world model (sites from the census gazetteer,
// penetration biases, gravity kernels) for the config.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sites, err := buildSites(cfg)
	if err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, sites: sites}

	homeWeights := make([]float64, len(sites))
	for i, s := range sites {
		homeWeights[i] = s.Weight * s.Bias
	}
	g.homeChooser, err = randx.NewWeightedChoice(homeWeights)
	if err != nil {
		return nil, fmt.Errorf("synth: home weights: %w", err)
	}

	// Gravity kernel per origin: w(i→j) ∝ Weight_j / d_ij^Gamma.
	g.gravityFrom = make([]*randx.WeightedChoice, len(sites))
	for i := range sites {
		w := make([]float64, len(sites))
		for j := range sites {
			if i == j {
				continue
			}
			d := geo.Haversine(sites[i].Center, sites[j].Center) / 1000 // km
			if d < 1 {
				d = 1 // clamp sub-km site pairs to avoid singular weights
			}
			w[j] = sites[j].Weight / math.Pow(d, cfg.Gamma)
		}
		wc, err := randx.NewWeightedChoice(w)
		if err != nil {
			return nil, fmt.Errorf("synth: gravity weights for site %d: %w", i, err)
		}
		g.gravityFrom[i] = wc
	}
	return g, nil
}

// Sites exposes the world model (read-only) for tests and documentation.
func (g *Generator) Sites() []Site { return g.sites }

// buildSites assembles the synthetic world from the census gazetteer:
// every national city, every NSW city not already present, the 20 Sydney
// suburbs, and a "Sydney (rest)" remainder so Sydney's total weight matches
// its census population. Per-site jitter grows sublinearly with population;
// per-site penetration bias is lognormal and fixed by the seed.
func buildSites(cfg Config) ([]Site, error) {
	gaz := census.Australia()
	biasRng := randx.New(cfg.Seed1^0x5eed_b1a5, cfg.Seed2^0x0b5e_55ed)

	national, err := gaz.Regions(census.ScaleNational)
	if err != nil {
		return nil, err
	}
	state, err := gaz.Regions(census.ScaleState)
	if err != nil {
		return nil, err
	}
	metro, err := gaz.Regions(census.ScaleMetropolitan)
	if err != nil {
		return nil, err
	}

	var sites []Site
	seen := map[string]bool{}
	addSite := func(name string, center geo.Point, weight float64, sigma float64) {
		sites = append(sites, Site{
			Name:   name,
			Center: center,
			Weight: weight,
			Bias:   randx.LogNormal(biasRng, 0, cfg.PenetrationSigma),
			Sigma:  sigma,
		})
		seen[name] = true
	}

	var sydney census.Area
	for _, a := range national.Areas {
		if a.Name == "Sydney" {
			sydney = a
			continue // Sydney is decomposed into suburbs + remainder below
		}
		addSite(a.Name, a.Center, float64(a.Population), citySigma(a.Population))
	}
	for _, a := range state.Areas {
		if a.Name == "Sydney" || seen[a.Name] {
			continue
		}
		// Albury appears nationally as Albury-Wodonga; treat separately by
		// name, they are distinct gazetteer entries at nearby coordinates.
		addSite(a.Name, a.Center, float64(a.Population), citySigma(a.Population))
	}
	if sydney.Population == 0 {
		return nil, fmt.Errorf("synth: national region set is missing Sydney")
	}
	var suburbTotal int
	for _, a := range metro.Areas {
		suburbTotal += a.Population
	}
	rest := sydney.Population - suburbTotal
	if rest <= 0 {
		return nil, fmt.Errorf("synth: Sydney suburbs (%d) exceed Sydney population (%d)", suburbTotal, sydney.Population)
	}
	// Sydney's remaining population is split two ways: a share lives in the
	// contiguous urban fabric around the named suburbs (scaled onto them
	// proportionally — the rescaling factor C absorbs the multiplier), and
	// the rest spreads widely across the metropolitan basin, whose
	// demographic centre sits near Parramatta, west of the CBD.
	suburbBoost := 1 + suburbFabricShare*float64(rest)/float64(suburbTotal)
	for _, a := range metro.Areas {
		// Suburbs differ in how concentrated their residents are around
		// the nominal centre (0.8–1.7 km anchor spread); this heterogeneity
		// is what makes very small search radii systematically biased
		// (Fig. 3b, §III edge-sensitivity discussion).
		sigma := 800 + 900*biasRng.Float64()
		addSite(a.Name, a.Center, float64(a.Population)*suburbBoost, sigma)
	}
	wide := (1 - suburbFabricShare) * float64(rest)
	addSite("Sydney (rest)", geo.Point{Lat: -33.8500, Lon: 151.0200}, wide, 12000)
	return sites, nil
}

// suburbFabricShare is the fraction of Sydney's non-top-20 population
// attributed to the urban fabric around the named suburbs.
const suburbFabricShare = 0.4

// citySigma maps a city population to a tweet-jitter radius in metres:
// larger cities sprawl further. Chosen so suburbs sit near 1 km and the
// largest cities near 8 km.
func citySigma(pop int) float64 {
	s := 500 * math.Pow(float64(pop)/10000, 0.3)
	if s < 500 {
		s = 500
	}
	if s > 8000 {
		s = 8000
	}
	return s
}

// Emit is the streaming callback type: it receives tweets in (user, time)
// order. Returning an error aborts generation.
type Emit func(tweet.Tweet) error

// splitmix64 is the SplitMix64 finaliser, used to derive well-separated
// per-user seed material from the config seeds and the user index.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// userRNG returns the dedicated random stream of user u. Each user owns an
// independent PCG stream derived from the config seeds, so generating a
// user is a pure function of (config, u) — the property that makes
// GenerateRange produce identical tweets regardless of how the user space
// is partitioned across shards.
func (g *Generator) userRNG(u int) *rand.Rand {
	h := splitmix64(uint64(u))
	return randx.New(g.cfg.Seed1^h, g.cfg.Seed2^splitmix64(h))
}

// Generate streams the whole corpus to emit in (user, time) order and
// returns the number of tweets produced.
func (g *Generator) Generate(emit Emit) (int, error) {
	return g.GenerateRange(0, g.cfg.NumUsers, emit)
}

// GenerateRange streams the tweets of users [lo, hi) to emit in
// (user, time) order and returns the number of tweets produced. Because
// every user draws from their own seeded random stream, the concatenation
// of GenerateRange over any partition of [0, NumUsers) is byte-for-byte the
// full Generate stream — the per-user-block parallel generation primitive.
func (g *Generator) GenerateRange(lo, hi int, emit Emit) (int, error) {
	cfg := g.cfg
	if lo < 0 || hi > cfg.NumUsers || lo > hi {
		return 0, fmt.Errorf("synth: user range [%d, %d) outside [0, %d)", lo, hi, cfg.NumUsers)
	}
	activity := randx.NewDiscretePowerLaw(cfg.ActivityAlpha, 1, cfg.MaxTweetsPerUser)

	period := cfg.End.Sub(cfg.Start).Seconds()
	startMS := cfg.Start.UnixMilli()
	endMS := cfg.End.UnixMilli()

	total := 0
	for u := lo; u < hi; u++ {
		userID := int64(u)
		rng := g.userRNG(u)
		// Tweet ids are allocated per user so they do not depend on how
		// many tweets earlier users produced.
		tweetID := userID * int64(cfg.MaxTweetsPerUser)
		n := activity.Sample(rng)
		home := g.homeChooser.Sample(rng)

		// Build the timestamp ladder: a uniform start plus bounded-Pareto
		// gaps, rescaled into the window if the raw span overflows it.
		gapMax := cfg.GapMaxSeconds
		if n > 1 {
			if cap := cfg.GapCapFactor * period / float64(n); cap < gapMax {
				gapMax = cap
			}
			if gapMax <= cfg.GapMinSeconds {
				gapMax = cfg.GapMinSeconds * 2
			}
		}
		offsets := make([]float64, n)
		var t float64
		for i := 0; i < n; i++ {
			if i > 0 {
				t += randx.BoundedPareto(rng, cfg.GapAlpha, cfg.GapMinSeconds, gapMax)
			}
			offsets[i] = t
		}
		span := offsets[n-1]
		slack := period - span
		if slack < 0 {
			// Rescale the whole ladder into 95% of the window.
			f := 0.95 * period / span
			for i := range offsets {
				offsets[i] *= f
			}
			slack = period - offsets[n-1]
		}
		startOff := rng.Float64() * slack

		// The user's residence is a fixed anchor inside the home site;
		// travel draws a fresh visit anchor per stay. Tweets jitter only
		// tightly around the current anchor (GPS noise + short local
		// trips), so area-assignment behaviour under small search radii
		// matches the paper's edge-sensitivity findings.
		homeAnchor := jitter(rng, g.sites[home].Center, g.sites[home].Sigma)
		site := home
		anchor := homeAnchor
		for i := 0; i < n; i++ {
			// Movement step: possibly relocate before tweeting.
			if rng.Float64() < cfg.MoveProb {
				if site != home && rng.Float64() < cfg.ReturnProb {
					site = home
					anchor = homeAnchor
				} else {
					site = g.gravityFrom[site].Sample(rng)
					anchor = jitter(rng, g.sites[site].Center, g.sites[site].Sigma)
				}
			}
			var p geo.Point
			if rng.Float64() < cfg.NoiseProb {
				p = randomPointInBBox(rng, geo.AustraliaBBox)
			} else {
				p = jitter(rng, anchor, g.sites[site].anchorTweetJitter())
			}
			ts := startMS + int64((startOff+offsets[i])*1000)
			if ts >= endMS {
				ts = endMS - 1
			}
			tw := tweet.Tweet{ID: tweetID, UserID: userID, TS: ts, Lat: p.Lat, Lon: p.Lon}
			tweetID++
			if err := emit(tw); err != nil {
				return total, fmt.Errorf("synth: emit: %w", err)
			}
			total++
		}
	}
	return total, nil
}

// GenerateAll materialises the corpus in memory. Intended for tests and
// examples; the full-size corpus should be streamed with Generate.
func (g *Generator) GenerateAll() ([]tweet.Tweet, error) {
	var out []tweet.Tweet
	_, err := g.Generate(func(t tweet.Tweet) error {
		out = append(out, t)
		return nil
	})
	return out, err
}

// Each implements tweet.Source, letting a Generator feed the Study
// pipeline directly without materialising the corpus.
func (g *Generator) Each(fn func(tweet.Tweet) error) error {
	_, err := g.Generate(fn)
	return err
}

// EachContext implements tweet.ContextSource: generation polls ctx every
// few thousand emitted tweets, so a cancelled study stops synthesising
// the rest of the corpus promptly.
func (g *Generator) EachContext(ctx context.Context, fn func(tweet.Tweet) error) error {
	_, err := g.Generate(ctxEmit(ctx, fn))
	return err
}

// ctxEmit wraps an emit callback with a periodic cancellation poll.
func ctxEmit(ctx context.Context, fn Emit) Emit {
	n := 0
	return func(t tweet.Tweet) error {
		if n++; n&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return fn(t)
	}
}

// Shards implements tweet.ShardedSource: contiguous user blocks, each
// generated independently from its users' dedicated random streams. The
// concatenation of the shards is exactly the Generate stream.
func (g *Generator) Shards(n int) ([]tweet.Source, error) {
	if n < 1 {
		return nil, fmt.Errorf("synth: shard count must be positive, got %d", n)
	}
	users := g.cfg.NumUsers
	if n > users {
		n = users
	}
	out := make([]tweet.Source, 0, n)
	lo := 0
	for k := 0; k < n; k++ {
		hi := lo + (users-lo)/(n-k)
		if hi > lo {
			out = append(out, rangeSource{g: g, lo: lo, hi: hi})
		}
		lo = hi
	}
	return out, nil
}

// rangeSource is one user block of a sharded Generator.
type rangeSource struct {
	g      *Generator
	lo, hi int
}

// Each implements tweet.Source over the block's user range.
func (r rangeSource) Each(fn func(tweet.Tweet) error) error {
	_, err := r.g.GenerateRange(r.lo, r.hi, fn)
	return err
}

// EachContext implements tweet.ContextSource over the block's user range.
func (r rangeSource) EachContext(ctx context.Context, fn func(tweet.Tweet) error) error {
	_, err := r.g.GenerateRange(r.lo, r.hi, ctxEmit(ctx, fn))
	return err
}

// jitter displaces a point by an isotropic 2-D Gaussian with standard
// deviation sigma metres, clamped into the study bounding box.
func jitter(rng *rand.Rand, c geo.Point, sigma float64) geo.Point {
	dN := rng.NormFloat64() * sigma
	dE := rng.NormFloat64() * sigma
	p := geo.Point{
		Lat: c.Lat + dN/geo.MetersPerDegreeLat,
		Lon: c.Lon + dE/geo.MetersPerDegreeLon(c.Lat),
	}
	return clampToBBox(p, geo.AustraliaBBox)
}

func randomPointInBBox(rng *rand.Rand, b geo.BBox) geo.Point {
	return geo.Point{
		Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
		Lon: b.MinLon + rng.Float64()*(b.MaxLon-b.MinLon),
	}
}

func clampToBBox(p geo.Point, b geo.BBox) geo.Point {
	if p.Lat < b.MinLat {
		p.Lat = b.MinLat
	}
	if p.Lat > b.MaxLat {
		p.Lat = b.MaxLat
	}
	if p.Lon < b.MinLon {
		p.Lon = b.MinLon
	}
	if p.Lon > b.MaxLon {
		p.Lon = b.MaxLon
	}
	return p
}
