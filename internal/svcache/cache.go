// Package svcache is the snapshot cache shared by the service layers
// (cmd/mobserve, internal/cluster): it memoises completed Study
// executions keyed on a composite string the caller builds from the
// canonical request (core.Request.Key) plus a validity component — the
// store generation (tweetdb.Store.Generation) for full-rescan
// computations, the live bucket-coverage fingerprint
// (live.Aggregator.CoverageKey) for bucket-fold computations, or the
// cluster-wide coverage fingerprint-sum for scatter-gather computations.
//
// Because validity lives in the key, an append invalidates exactly the
// entries whose coverage it touched — entries over unchanged buckets keep
// hitting across store generations — and stale entries age out through
// oldest-first eviction instead of a wholesale reset.
//
// The §4/§7/§8 merge contracts make the cached value exact: a pass (or
// fold) over fixed inputs is deterministic, so one completed computation
// answers every repeat of its key.
package svcache

import (
	"fmt"
	"sync"

	"geomob/internal/core"
	"geomob/internal/obs"
)

// Process-wide cache metrics (DESIGN.md §12). Every Cache instance
// feeds the same series: /metrics wants the service-level hit rate, and
// instances also keep their own hit/miss counters for /healthz.
var (
	mHits      = obs.Def.Counter("geomob_cache_hits_total", "Snapshot cache lookups served without recomputation.")
	mMisses    = obs.Def.Counter("geomob_cache_misses_total", "Snapshot cache lookups that invoked compute.")
	mEvictions = obs.Def.Counter("geomob_cache_evictions_total", "Snapshot cache entries dropped by oldest-first eviction.")
)

// DefaultMaxSnapshots bounds the entry count when New is given zero.
// Distinct windowed requests are unbounded, so the cache evicts
// oldest-first when full: one burst of distinct windows ages out the
// stalest entries instead of wiping every warm one at once.
const DefaultMaxSnapshots = 128

// Cache memoises completed executions. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*snapshot
	// order is the FIFO insertion order backing oldest-first eviction.
	// Slots whose entry was already replaced or removed are skipped.
	order        []cacheSlot
	hits, misses int64
}

type cacheSlot struct {
	key string
	e   *snapshot
}

// snapshot is one memoised execution; ready closes once res/err are set,
// so concurrent requests for the same key wait instead of recomputing.
type snapshot struct {
	ready chan struct{}
	res   *core.Result
	err   error
}

// New builds a cache bounded to max entries (0 means
// DefaultMaxSnapshots).
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultMaxSnapshots
	}
	return &Cache{max: max, entries: map[string]*snapshot{}}
}

// Stats reports how many lookups were served from a completed or
// in-flight entry (hits) versus how many invoked compute (misses).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// evictLocked drops oldest entries until the cache fits. Caller holds
// c.mu. Only slots still holding their original entry count — a key that
// failed and was re-inserted occupies a younger slot.
func (c *Cache) evictLocked() {
	for len(c.entries) >= c.max && len(c.order) > 0 {
		slot := c.order[0]
		c.order = c.order[1:]
		if c.entries[slot.key] == slot.e {
			delete(c.entries, slot.key)
			mEvictions.Inc()
		}
	}
}

// Get returns the result for key, running compute at most once per key
// while the entry lives. cached reports whether the result was served
// without invoking compute. Failed computations are not kept: the entry
// is dropped so the next request retries — a cancelled or panicking pass
// must not poison the key for everyone else.
func (c *Cache) Get(key string, compute func() (*core.Result, error)) (res *core.Result, cached bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		mHits.Inc()
		<-e.ready
		return e.res, true, e.err
	}
	c.misses++
	mMisses.Inc()
	c.evictLocked()
	e := &snapshot{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, cacheSlot{key: key, e: e})
	c.mu.Unlock()

	// ready must close and failed entries must be dropped even if
	// compute panics: net/http recovers only the panicking handler's
	// goroutine, and a poisoned entry would block every later request
	// for this key forever.
	defer func() {
		if r := recover(); r != nil {
			e.res, e.err = nil, fmt.Errorf("snapshot computation panicked: %v", r)
		}
		close(e.ready)
		if e.err != nil {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			// Reclaim the order slot too: failures never reach the
			// eviction sweep (the map stays small), so leaving the slot
			// would leak one per failed computation forever.
			for idx := range c.order {
				if c.order[idx].e == e {
					c.order = append(c.order[:idx], c.order[idx+1:]...)
					break
				}
			}
			c.mu.Unlock()
		}
		res, cached, err = e.res, false, e.err
	}()
	e.res, e.err = compute()
	return e.res, false, e.err
}
