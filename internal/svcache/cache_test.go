package svcache

import (
	"errors"
	"fmt"
	"testing"

	"geomob/internal/core"
)

// TestSnapshotCachePanicRecovery: a panicking computation must surface as
// an error and must not poison the key — later requests retry instead of
// blocking forever on an entry whose ready channel never closed.
func TestSnapshotCachePanicRecovery(t *testing.T) {
	c := New(0)

	_, cached, err := c.Get("k", func() (*core.Result, error) { panic("boom") })
	if err == nil || cached {
		t.Fatalf("panicking compute: cached=%v err=%v, want error", cached, err)
	}

	want := &core.Result{Observers: 7}
	res, cached, err := c.Get("k", func() (*core.Result, error) { return want, nil })
	if err != nil || cached || res != want {
		t.Fatalf("retry after panic: res=%v cached=%v err=%v", res, cached, err)
	}

	// And the healthy entry now serves from cache.
	res, cached, err = c.Get("k", func() (*core.Result, error) {
		return nil, errors.New("must not recompute")
	})
	if err != nil || !cached || res != want {
		t.Fatalf("cache hit after retry: res=%v cached=%v err=%v", res, cached, err)
	}
}

// TestSnapshotCacheErrorNotCached: failed computations are dropped so the
// next request retries.
func TestSnapshotCacheErrorNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")

	if _, cached, err := c.Get("k", func() (*core.Result, error) { return nil, boom }); !errors.Is(err, boom) || cached {
		t.Fatalf("cached=%v err=%v, want boom uncached", cached, err)
	}
	want := &core.Result{}
	if res, cached, err := c.Get("k", func() (*core.Result, error) { return want, nil }); err != nil || cached || res != want {
		t.Fatalf("retry: res=%v cached=%v err=%v", res, cached, err)
	}
}

// TestSnapshotCacheKeyedInvalidation: the validity component lives inside
// the key, so a moved generation (or bucket coverage) misses while the
// old key's entry simply ages out instead of wiping anything.
func TestSnapshotCacheKeyedInvalidation(t *testing.T) {
	c := New(0)
	a := &core.Result{}
	if _, cached, _ := c.Get("req|g=1", func() (*core.Result, error) { return a, nil }); cached {
		t.Fatal("first fill reported cached")
	}
	if _, cached, _ := c.Get("req|g=2", func() (*core.Result, error) { return &core.Result{}, nil }); cached {
		t.Fatal("new generation key reported cached")
	}
	if res, cached, _ := c.Get("req|g=1", func() (*core.Result, error) { return nil, errors.New("nope") }); !cached || res != a {
		t.Fatal("old generation entry should still be warm until evicted")
	}
}

// TestSnapshotCacheOldestFirstEviction: filling the cache past its bound
// evicts the stalest entries only — a burst of distinct windowed requests
// cannot wipe every warm entry at once.
func TestSnapshotCacheOldestFirstEviction(t *testing.T) {
	c := New(0)
	mk := func(i int) string { return fmt.Sprintf("k%03d", i) }
	for i := 0; i < DefaultMaxSnapshots; i++ {
		if _, cached, _ := c.Get(mk(i), func() (*core.Result, error) { return &core.Result{Observers: i}, nil }); cached {
			t.Fatalf("fill %d reported cached", i)
		}
	}
	// One more insert evicts exactly the oldest entry.
	if _, cached, _ := c.Get("overflow", func() (*core.Result, error) { return &core.Result{}, nil }); cached {
		t.Fatal("overflow insert reported cached")
	}
	if _, cached, _ := c.Get(mk(0), func() (*core.Result, error) { return &core.Result{}, nil }); cached {
		t.Fatal("oldest entry survived eviction")
	}
	// The youngest pre-overflow entries are still warm (the old code
	// reset the whole map here).
	for i := DefaultMaxSnapshots - 8; i < DefaultMaxSnapshots; i++ {
		res, cached, _ := c.Get(mk(i), func() (*core.Result, error) { return nil, errors.New("cold") })
		if !cached || res == nil || res.Observers != i {
			t.Fatalf("young entry %d was evicted by the burst", i)
		}
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats: hits=%d misses=%d, want both positive", hits, misses)
	}
}
