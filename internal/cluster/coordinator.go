package cluster

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/obs"
	"geomob/internal/ring"
	"geomob/internal/svcache"
	"geomob/internal/tweet"
	"geomob/internal/wal"
)

// Coordinator-side series (DESIGN.md §12). Stage histograms share one
// family labelled by pipeline stage; the scatter stage includes every
// failover retry round, so scatter_seconds − fold_seconds exposes
// probe/assignment overhead directly.
var (
	mClusterIngested  = obs.Def.Counter("geomob_cluster_ingested_rows_total", "Rows accepted into the replication spool by coordinators.")
	mClusterFetches   = obs.Def.Counter("geomob_cluster_partial_fetches_total", "Shard fold RPCs issued by coordinators.")
	mClusterProbes    = obs.Def.Counter("geomob_cluster_coverage_probes_total", "Shard coverage RPCs issued by coordinators.")
	mClusterFailovers = obs.Def.Counter("geomob_cluster_failovers_total", "Nodes banned mid-query after an unavailable response.")
	mClusterUnavail   = obs.Def.Counter("geomob_cluster_unavailable_total", "Queries failed because some slot had no live, current replica.")

	mStageScatter  = obs.Def.Histogram("geomob_query_stage_seconds", "Per-stage latency of a coordinator scatter-gather query.", nil, "stage", "scatter")
	mStageFold     = obs.Def.Histogram("geomob_query_stage_seconds", "Per-stage latency of a coordinator scatter-gather query.", nil, "stage", "fold")
	mStageMerge    = obs.Def.Histogram("geomob_query_stage_seconds", "Per-stage latency of a coordinator scatter-gather query.", nil, "stage", "merge")
	mStageAssemble = obs.Def.Histogram("geomob_query_stage_seconds", "Per-stage latency of a coordinator scatter-gather query.", nil, "stage", "assemble")
)

// CoordinatorOptions configure a Coordinator.
type CoordinatorOptions struct {
	// BatchSize is how many records accumulate per placement slot
	// before the slot's buffer is framed, spooled, and staged on its
	// replica lanes; zero means 4096. Larger batches amortise the
	// per-frame overhead (an fsync'd spool append plus one HTTP
	// round-trip per replica).
	BatchSize int
	// QueueDepth bounds each delivery lane's staged frames; zero means
	// DefaultQueueDepth. Overflow is not lost and does not block the
	// feed: it stays in the spool and the lane refills as it drains, so
	// a dead shard costs bounded coordinator memory.
	QueueDepth int
	// CacheSize bounds the snapshot cache; zero means
	// svcache.DefaultMaxSnapshots.
	CacheSize int
	// Replication is the ring's replica factor R: every placement slot
	// is delivered to R members (clamped to the member count) and any
	// one of them can serve it. Zero means 1 — no redundancy, the PR 5
	// behaviour.
	Replication int
	// WALDir, when set, backs the ingest spool with a segmented WAL in
	// that directory: ingest acknowledges only after the fsync'd
	// append, and a coordinator reopened over the same directory (with
	// the same shard order) replays every unacknowledged frame. Empty
	// keeps the spool in memory — same replay semantics, no crash
	// durability.
	WALDir string
	// RetryBase/RetryMax bound the lanes' exponential delivery backoff;
	// zero means DefaultRetryBase/DefaultRetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
}

const (
	// DefaultQueueDepth stages up to four full flush cycles of slot
	// frames per lane before spilling to the spool.
	DefaultQueueDepth = 4 * ring.Slots
	// DefaultRetryBase/DefaultRetryMax bound delivery backoff.
	DefaultRetryBase = 100 * time.Millisecond
	DefaultRetryMax  = 5 * time.Second
)

// Coordinator is the cluster front door: it routes ingest records into
// per-slot batches, spools each framed batch durably (the
// acknowledgement point), and stages it on the delivery lane of every
// replica the ring places the slot on. Queries scatter slot-set folds
// over one live, current replica per slot — failing over replica by
// replica — merge the slot-disjoint partials, and assemble through the
// exact single-node float pipeline, so answers are bit-identical to a
// single-node Study.Execute over the union substream no matter which
// replicas serve (DESIGN.md §10).
type Coordinator struct {
	batch     int
	depth     int
	retryBase time.Duration
	retryMax  time.Duration
	cache     *svcache.Cache
	sp        spool

	// topoMu guards the (ring, shards, lanes) triple for readers.
	// Membership writers additionally hold mu, so holding either locks
	// the topology still.
	topoMu sync.RWMutex
	ring   *ring.Ring
	shards []Shard
	lanes  []*lane

	// mu serialises ingest buffering (Add/Flush) exactly like
	// live.Ingestor — and, because membership changes take it too, a
	// ring change is write-quiesced by construction.
	mu   sync.Mutex
	bufs [ring.Slots]*tweet.Batch

	wg     sync.WaitGroup
	closed atomic.Bool

	ingested       atomic.Int64 // records accepted (spooled)
	partialFetches atomic.Int64 // shard fold RPCs issued
	coverageProbes atomic.Int64 // shard coverage RPCs issued
}

// memberName names ring member i; names are positional so a WAL-backed
// coordinator reopened over the same shard order rebuilds the same
// ring.
func memberName(i int) string { return fmt.Sprintf("member-%03d", i) }

// NewCoordinator builds a coordinator over the shards. At least one
// shard is required; member i of the ring is shards[i], so the shard
// order must be identical on every coordinator of the cluster (and
// across restarts when WALDir is set, for spool replay to reach the
// right nodes).
func NewCoordinator(shards []Shard, opts CoordinatorOptions) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	r := opts.Replication
	if r <= 0 {
		r = 1
	}
	if r > len(shards) {
		r = len(shards)
	}
	names := make([]string, len(shards))
	for i := range names {
		names[i] = memberName(i)
	}
	rg, err := ring.New(names, r)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		batch:     opts.BatchSize,
		depth:     opts.QueueDepth,
		retryBase: opts.RetryBase,
		retryMax:  opts.RetryMax,
		cache:     svcache.New(opts.CacheSize),
		ring:      rg,
		shards:    append([]Shard(nil), shards...),
	}
	if c.batch <= 0 {
		c.batch = 4096
	}
	if c.depth <= 0 {
		c.depth = DefaultQueueDepth
	}
	if c.retryBase <= 0 {
		c.retryBase = DefaultRetryBase
	}
	if c.retryMax < c.retryBase {
		c.retryMax = DefaultRetryMax
	}
	if opts.WALDir != "" {
		sp, err := wal.Open(wal.Options{Dir: opts.WALDir})
		if err != nil {
			return nil, err
		}
		c.sp = sp
	} else {
		c.sp = newMemSpool(randomSenderID())
	}
	for i, sh := range c.shards {
		l := newLane(i, sh, c.sp, c.depth, c.retryBase, c.retryMax)
		if c.sp.PendingRowsNode(i) > 0 {
			// The reopened WAL owes this node deliveries: replay them
			// through the lane's spool-refill path.
			l.markGapped()
		}
		c.lanes = append(c.lanes, l)
		c.wg.Add(1)
		go l.run(&c.wg)
	}
	return c, nil
}

// Shards returns the number of live members.
func (c *Coordinator) Shards() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.ring.Live()
}

// Ingested returns the number of records accepted (spooled) so far.
func (c *Coordinator) Ingested() int64 { return c.ingested.Load() }

// PartialFetches returns the number of shard fold RPCs issued — the
// quantity warm cache hits keep flat (the §8 "zero shard scans"
// assertion).
func (c *Coordinator) PartialFetches() int64 { return c.partialFetches.Load() }

// CoverageProbes returns the number of shard coverage RPCs issued.
func (c *Coordinator) CoverageProbes() int64 { return c.coverageProbes.Load() }

// CacheStats exposes the snapshot cache counters.
func (c *Coordinator) CacheStats() (hits, misses int64) { return c.cache.Stats() }

// SenderID exposes the spool's delivery identity (tests).
func (c *Coordinator) SenderID() string { return c.sp.SenderID() }

// SpoolStats exposes the spool's pending counters.
func (c *Coordinator) SpoolStats() wal.Stats { return c.sp.Stats() }

// Add routes one record into its placement slot's buffer, shipping the
// slot when the buffer fills. Safe for concurrent use. Acceptance (a
// nil return from the enclosing Flush) means the record is spooled —
// durably under a WALDir — and owed to every replica, not that every
// replica already holds it.
func (c *Coordinator) Add(t tweet.Tweet) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("%w: %w", live.ErrBadInput, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("cluster: coordinator closed")
	}
	return c.addLocked(t)
}

func (c *Coordinator) addLocked(t tweet.Tweet) error {
	k := ring.SlotOf(t.UserID)
	b := c.bufs[k]
	if b == nil {
		b = &tweet.Batch{}
		b.Grow(c.batch)
		c.bufs[k] = b
	}
	b.Append(t)
	if b.Len() >= c.batch {
		return c.shipLocked(k)
	}
	return nil
}

// AddBatch routes a whole columnar batch, splitting it across placement
// slots by the UserID column. The batch is validated once up front and
// only read; ownership stays with the caller. Safe for concurrent use.
func (c *Coordinator) AddBatch(b *tweet.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("%w: %w", live.ErrBadInput, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("cluster: coordinator closed")
	}
	for r := 0; r < b.Len(); r++ {
		if err := c.addLocked(b.Row(r)); err != nil {
			return err
		}
	}
	return nil
}

// shipLocked frames slot k's buffer, appends it to the spool (the
// durability/acknowledgement point), and stages it on every replica
// lane. Caller holds c.mu.
func (c *Coordinator) shipLocked(k int) error {
	b := c.bufs[k]
	if b == nil || b.Len() == 0 {
		return nil
	}
	frame, err := tweet.AppendFrame(nil, b)
	if err != nil {
		return fmt.Errorf("%w: %w", live.ErrBadInput, err)
	}
	c.topoMu.RLock()
	replicas := c.ring.Replicas(k)
	lanes := c.lanes
	c.topoMu.RUnlock()
	var mask uint64
	for _, nd := range replicas {
		mask |= 1 << uint(nd)
	}
	seq, err := c.sp.Append(k, mask, frame)
	if err != nil {
		return fmt.Errorf("cluster: spool append: %w", err)
	}
	rows := b.Len()
	for _, nd := range replicas {
		lanes[nd].enqueue(seq, k, rows, frame)
	}
	c.ingested.Add(int64(rows))
	mClusterIngested.Add(int64(rows))
	b.Reset()
	return nil
}

// Flush ships every buffered slot batch and waits for the lanes to
// settle: on a healthy cluster every replica has applied everything on
// return, while a lane whose shard is down returns immediately — its
// frames are safe in the spool, surfaced as pending in Health, and
// delivered on recovery. Flush therefore fails only when spooling
// itself fails; a dead shard degrades the report, not the ingest.
func (c *Coordinator) Flush() error {
	c.mu.Lock()
	var firstErr error
	for k := range c.bufs {
		if err := c.shipLocked(k); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.topoMu.RLock()
	lanes := append([]*lane(nil), c.lanes...)
	c.topoMu.RUnlock()
	c.mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	for _, l := range lanes {
		l.waitSettled()
	}
	return nil
}

// Close flushes, stops the lanes, and closes the spool. Undelivered
// frames stay spooled — durably under a WALDir, for the next
// coordinator over the same directory. The coordinator must not be
// used afterwards.
func (c *Coordinator) Close() error {
	if c.closed.Load() {
		return nil
	}
	err := c.Flush()
	c.closed.Store(true)
	c.topoMu.RLock()
	lanes := append([]*lane(nil), c.lanes...)
	c.topoMu.RUnlock()
	for _, l := range lanes {
		l.close()
	}
	c.wg.Wait()
	if cerr := c.sp.Close(); err == nil {
		err = cerr
	}
	return err
}

// IngestNDJSON drains an NDJSON stream through the coordinator and
// flushes at the end, returning how many records the stream contributed
// — the cluster-mode twin of live.Ingestor.IngestNDJSON, riding the
// same shared loop and error contract (live.ErrBadInput marks the
// caller's records).
func (c *Coordinator) IngestNDJSON(r io.Reader) (int, error) {
	return live.DrainNDJSON(r, c.Add, c.Flush)
}

// IngestBinary drains a binary batch stream through the coordinator and
// flushes at the end — the cluster-mode twin of
// live.Ingestor.IngestBinary.
func (c *Coordinator) IngestBinary(r io.Reader) (int, error) {
	return live.DrainBinary(r, 0, c.AddBatch, c.Flush)
}

// UnavailableError reports placement slots with no live, current
// replica: the member owning them and every other replica are
// unreachable (or still replaying missed deliveries). Callers surface
// it as 503 + Retry-After, naming the missing user-hash ranges.
type UnavailableError struct {
	Slots []int
	// TraceID is the query trace the failure belongs to when the request
	// carried one, so a 503 body correlates with the slow-query log and
	// shard-side errors.
	TraceID string
}

// UserRanges renders the unavailable slots' contiguous user-hash
// ranges (inclusive, over ring.HashUser space).
func (e *UnavailableError) UserRanges() []string {
	out := make([]string, len(e.Slots))
	for i, k := range e.Slots {
		lo, hi := ring.SlotRange(k)
		out[i] = fmt.Sprintf("%016x-%016x", lo, hi)
	}
	return out
}

func (e *UnavailableError) Error() string {
	msg := fmt.Sprintf("cluster: no live replica for %d of %d user-ranges (%s)",
		len(e.Slots), ring.Slots, strings.Join(e.UserRanges(), ", "))
	if e.TraceID != "" {
		msg += " [trace " + e.TraceID + "]"
	}
	return msg
}

// assignSlots picks the replica to serve each slot: the first
// non-banned replica in ring order whose copy is current (zero spooled
// rows still owed for that slot — a replica mid-replay would answer
// with stale buckets). Slots with no candidate come back as an
// UnavailableError.
func (c *Coordinator) assignSlots(rg *ring.Ring, banned map[int]bool) ([ring.Slots]int, *UnavailableError) {
	var assign [ring.Slots]int
	var missing []int
	for k := 0; k < ring.Slots; k++ {
		chosen := -1
		for _, nd := range rg.Replicas(k) {
			if banned[nd] || c.sp.PendingRowsSlotNode(nd, k) > 0 {
				continue
			}
			chosen = nd
			break
		}
		if chosen < 0 {
			missing = append(missing, k)
			continue
		}
		assign[k] = chosen
	}
	if missing != nil {
		return assign, &UnavailableError{Slots: missing}
	}
	return assign, nil
}

// groupAssign buckets the slot→node assignment into one ascending slot
// list per node, skipping slots in skip.
func groupAssign(assign [ring.Slots]int, skip map[int]bool) map[int][]int {
	groups := map[int][]int{}
	for k := 0; k < ring.Slots; k++ {
		if skip != nil && skip[k] {
			continue
		}
		groups[assign[k]] = append(groups[assign[k]], k)
	}
	return groups
}

// Query answers req by replicated scatter-gather: pick one live,
// current replica per slot, probe their coverage to build the cache
// key, and on a miss fold the slot partials concurrently, merging
// through the exact single-node float pipeline (core.AssembleFolded).
// Because every replica of a slot holds the identical slot substream,
// the answer is bit-identical no matter which replicas serve; a
// replica dropping mid-query fails over to the next, and only a slot
// with no live replica at all fails the query (*UnavailableError).
// cached reports a warm hit, which costs the probes and nothing else.
func (c *Coordinator) Query(req core.Request) (*core.Result, bool, error) {
	return c.QueryCtx(context.Background(), req)
}

// QueryCtx is Query carrying a request context: the context's trace
// (obs.TraceFrom) records per-stage timings — scatter (assignment +
// coverage probes, including failover rounds), fold (shard partial
// fetches), merge, assemble — and its ID travels to remote shards in
// the obs.TraceHeader header and is stamped onto any UnavailableError.
func (c *Coordinator) QueryCtx(ctx context.Context, req core.Request) (*core.Result, bool, error) {
	if _, err := core.PlanRequest(req); err != nil {
		return nil, false, err
	}
	tr := obs.TraceFrom(ctx)
	tid := obs.TraceID(ctx)
	c.topoMu.RLock()
	rg := c.ring
	shards := append([]Shard(nil), c.shards...)
	c.topoMu.RUnlock()

	banned := map[int]bool{}
	var assign [ring.Slots]int
	var keys map[int]string
	endScatter := tr.StartStage("scatter")
	tScatter := time.Now()
	for {
		a, uerr := c.assignSlots(rg, banned)
		if uerr != nil {
			endScatter()
			uerr.TraceID = tid
			mClusterUnavail.Inc()
			return nil, false, uerr
		}
		ks, failed, err := c.coverageScatter(ctx, shards, req, groupAssign(a, nil))
		if err != nil {
			endScatter()
			return nil, false, err
		}
		if failed >= 0 {
			banned[failed] = true
			mClusterFailovers.Inc()
			continue
		}
		assign, keys = a, ks
		break
	}
	mStageScatter.Observe(time.Since(tScatter).Seconds())
	endScatter()

	fp := coverageFingerprint(rg.Version(), assign, keys)
	// Explain recording rides the triggering request's context only: a
	// caller coalesced onto another request's compute (or served from
	// cache) gets topology but no shard fragments.
	rec := newShardExplainRecorder(ctx)
	res, cached, err := c.cache.Get(req.Key()+"|cf="+fp, func() (*core.Result, error) {
		endFold := tr.StartStage("fold")
		tFold := time.Now()
		parts, err := c.fetchPartials(ctx, shards, rg, req, assign, banned, rec)
		endFold()
		if err != nil {
			return nil, err
		}
		mStageFold.Observe(time.Since(tFold).Seconds())

		endMerge := tr.StartStage("merge")
		tMerge := time.Now()
		merged, err := MergePartials(req, parts)
		endMerge()
		if err != nil {
			return nil, err
		}
		mStageMerge.Observe(time.Since(tMerge).Seconds())

		endAsm := tr.StartStage("assemble")
		tAsm := time.Now()
		out, err := core.AssembleFolded(req, merged)
		endAsm()
		if err == nil {
			mStageAssemble.Observe(time.Since(tAsm).Seconds())
		}
		return out, err
	})
	if err != nil {
		var uerr *UnavailableError
		if errors.As(err, &uerr) {
			mClusterUnavail.Inc()
			if tid != "" && uerr.TraceID == "" {
				// Stamp a copy: the original may be shared by the cache
				// with concurrent callers carrying other traces.
				stamped := *uerr
				stamped.TraceID = tid
				err = &stamped
			}
		}
	}
	if ex := obs.ExplainFrom(ctx); ex != nil && err == nil {
		ex.Set("cluster", ClusterExplain{
			RingVersion: fmt.Sprintf("%016x", rg.Version()),
			Fingerprint: fp,
			Members:     len(shards),
			Failovers:   len(banned),
			Shards:      rec.fragments(),
		})
	}
	return res, cached, err
}

// coverageScatter probes each chosen node's coverage over its slot set,
// concurrently. An unavailable node is reported back for failover;
// sentinel fold errors propagate as-is (every replica would answer
// identically, so failing over is pointless).
func (c *Coordinator) coverageScatter(ctx context.Context, shards []Shard, req core.Request, groups map[int][]int) (map[int]string, int, error) {
	type probe struct {
		node int
		key  string
		err  error
	}
	ch := make(chan probe, len(groups))
	for nd, slots := range groups {
		c.coverageProbes.Add(1)
		mClusterProbes.Inc()
		go func(nd int, slots []int) {
			key, err := shards[nd].Coverage(ctx, req, slots)
			ch <- probe{nd, key, err}
		}(nd, slots)
	}
	keys := map[int]string{}
	failed := -1
	var firstErr error
	for range groups {
		p := <-ch
		switch {
		case p.err == nil:
			keys[p.node] = p.key
		case isUnavailable(p.err):
			if failed < 0 || p.node < failed {
				failed = p.node
			}
		default:
			if firstErr == nil {
				firstErr = p.err
			}
		}
	}
	if firstErr != nil {
		return nil, -1, firstErr
	}
	if failed >= 0 {
		return nil, failed, nil
	}
	return keys, -1, nil
}

// fetchPartials gathers every slot's partial from its assigned replica,
// failing over slot by slot if a node drops between the coverage probe
// and the fetch.
func (c *Coordinator) fetchPartials(ctx context.Context, shards []Shard, rg *ring.Ring, req core.Request, assign [ring.Slots]int, banned map[int]bool, rec *shardExplainRecorder) ([]*live.ShardPartial, error) {
	parts := make([]*live.ShardPartial, ring.Slots)
	done := map[int]bool{}
	for len(done) < ring.Slots {
		groups := groupAssign(assign, done)
		type fetched struct {
			node  int
			slots []int
			ps    []*live.ShardPartial
			err   error
		}
		ch := make(chan fetched, len(groups))
		for nd, slots := range groups {
			c.partialFetches.Add(1)
			mClusterFetches.Inc()
			go func(nd int, slots []int) {
				t0 := time.Now()
				ps, err := shards[nd].Partials(ctx, req, slots)
				if err == nil {
					rec.add(nd, slots, ps, float64(time.Since(t0).Nanoseconds())/1e6)
				}
				ch <- fetched{nd, slots, ps, err}
			}(nd, slots)
		}
		var failedNodes []int
		for range groups {
			f := <-ch
			switch {
			case f.err == nil:
				if len(f.ps) != len(f.slots) {
					return nil, fmt.Errorf("cluster: node %d returned %d partials for %d slots", f.node, len(f.ps), len(f.slots))
				}
				for i, k := range f.slots {
					parts[k] = f.ps[i]
					done[k] = true
				}
			case isUnavailable(f.err):
				failedNodes = append(failedNodes, f.node)
			default:
				return nil, f.err
			}
		}
		if len(failedNodes) > 0 {
			for _, nd := range failedNodes {
				banned[nd] = true
				mClusterFailovers.Inc()
			}
			// Reassign the slots still missing to surviving replicas.
			a, uerr := c.assignSlots(rg, banned)
			if uerr != nil {
				var stuck []int
				for _, k := range uerr.Slots {
					if !done[k] {
						stuck = append(stuck, k)
					}
				}
				if len(stuck) > 0 {
					return nil, &UnavailableError{Slots: stuck}
				}
			}
			for k := 0; k < ring.Slots; k++ {
				if !done[k] {
					assign[k] = a[k]
				}
			}
		}
	}
	return parts, nil
}

// coverageFingerprint condenses (ring version, slot→node assignment,
// per-node coverage keys) into the cache key component that moves
// exactly when any served slot's covered buckets change — or when the
// serving topology does.
func coverageFingerprint(version uint64, assign [ring.Slots]int, keys map[int]string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v=%016x;", version)
	for k := 0; k < ring.Slots; k++ {
		fmt.Fprintf(h, "%d:%d;", k, assign[k])
	}
	// Node keys in node order; each embeds its slot list and the
	// per-slot coverage keys.
	for nd := 0; nd < 64; nd++ {
		if key, ok := keys[nd]; ok {
			fmt.Fprintf(h, "n%d=%s;", nd, key)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ShardStatus is one member's entry in the coordinator's health report.
type ShardStatus struct {
	Index  int    `json:"index"`
	Member string `json:"member"`
	Gone   bool   `json:"gone,omitempty"`
	// OK means the member answered its health probe. Degraded means it
	// currently owes spooled deliveries or its last delivery failed —
	// transient by design: it clears once the lane catches the member
	// back up.
	OK       bool `json:"ok"`
	Degraded bool `json:"degraded,omitempty"`
	// Pending counts spooled rows not yet acknowledged by this member;
	// Queue counts frames staged in its lane. Retries/Failures/Dropped
	// count delivery attempts that failed, and LastError/LastErrorAt
	// latch the most recent failure — nothing a 202 accepted is ever
	// dropped without a trace here.
	Pending     int64       `json:"pending"`
	Queue       int         `json:"queue"`
	Delivered   int64       `json:"delivered"`
	Batches     int64       `json:"batches"`
	Retries     int64       `json:"retries,omitempty"`
	Failures    int64       `json:"failures,omitempty"`
	Dropped     int64       `json:"dropped,omitempty"`
	LastError   string      `json:"last_error,omitempty"`
	LastErrorAt string      `json:"last_error_at,omitempty"`
	Slots       []int       `json:"slots"`
	Health      ShardHealth `json:"health"`
}

// RingStatus summarises the placement ring and spool for /healthz.
type RingStatus struct {
	Version     string    `json:"version"`
	Members     int       `json:"members"`
	Live        int       `json:"live"`
	Replication int       `json:"replication"`
	Slots       int       `json:"slots"`
	Spool       wal.Stats `json:"spool"`
}

// RingStatus reports the current ring configuration and spool state.
func (c *Coordinator) RingStatus() RingStatus {
	c.topoMu.RLock()
	rg := c.ring
	c.topoMu.RUnlock()
	return RingStatus{
		Version:     fmt.Sprintf("%016x", rg.Version()),
		Members:     len(rg.Members()),
		Live:        rg.Live(),
		Replication: rg.Replication(),
		Slots:       ring.Slots,
		Spool:       c.sp.Stats(),
	}
}

// Health probes every member and combines the liveness with the lanes'
// delivery state — the payload of the coordinator's /healthz. A member
// with undelivered spooled rows or a failing lane reports Degraded
// rather than silently shedding its batches.
func (c *Coordinator) Health() []ShardStatus {
	c.topoMu.RLock()
	rg := c.ring
	shards := append([]Shard(nil), c.shards...)
	lanes := append([]*lane(nil), c.lanes...)
	c.topoMu.RUnlock()
	members := rg.Members()
	out := make([]ShardStatus, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		st := &out[i]
		st.Index = i
		st.Member = members[i].Name
		st.Gone = members[i].Gone
		ls := lanes[i].status()
		st.Pending = c.sp.PendingRowsNode(i)
		st.Queue = ls.queued
		st.Delivered = ls.delivered
		st.Batches = ls.batches
		st.Retries = ls.retries
		st.Failures = ls.failures
		st.Dropped = ls.dropped
		st.LastError = ls.lastErr
		if !ls.errAt.IsZero() {
			st.LastErrorAt = ls.errAt.UTC().Format(time.RFC3339)
		}
		st.Degraded = ls.down || st.Pending > 0
		st.Slots = rg.SlotsFor(i)
		if members[i].Gone {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := shards[i].Health()
			if err != nil {
				out[i].Degraded = true
				if out[i].LastError == "" {
					out[i].LastError = err.Error()
				}
				return
			}
			out[i].OK = true
			out[i].Health = h
		}(i)
	}
	wg.Wait()
	return out
}

// randomSenderID labels an in-memory spool's deliveries uniquely per
// coordinator instance.
func randomSenderID() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "mem-sender"
	}
	return fmt.Sprintf("%x", buf)
}
