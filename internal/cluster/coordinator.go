package cluster

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/svcache"
	"geomob/internal/tweet"
)

// CoordinatorOptions configure a Coordinator.
type CoordinatorOptions struct {
	// BatchSize is how many records accumulate per shard before a send is
	// enqueued; zero means 4096. Larger batches amortise the per-send
	// overhead (an HTTP round-trip for remote shards, a ring lock for
	// local ones).
	BatchSize int
	// QueueDepth bounds the per-shard send queue in batches; zero means
	// 4. A full queue blocks the enqueuer — the coordinator's
	// backpressure: one slow shard throttles the feed instead of letting
	// unsent batches grow without bound.
	QueueDepth int
	// CacheSize bounds the snapshot cache; zero means
	// svcache.DefaultMaxSnapshots.
	CacheSize int
}

// Coordinator is the cluster front door: it routes ingest records to the
// shard owning each user (batched, concurrent, with per-shard
// backpressure), scatters fold requests across every shard, merges the
// returned user-disjoint partials through core.AssembleFolded, and
// memoises results keyed on the fingerprint-sum of the shards' coverage
// keys — a warm repeat does zero shard folds.
type Coordinator struct {
	part   Partitioner
	shards []Shard
	cache  *svcache.Cache

	// mu serialises the buffered ingest path (Add/Flush), exactly like
	// live.Ingestor; the lanes behind it drain concurrently.
	mu    sync.Mutex
	bufs  []*tweet.Batch
	lanes []*lane
	batch int

	closed atomic.Bool

	ingested       atomic.Int64 // records routed into lanes
	partialFetches atomic.Int64 // shard fold RPCs issued
	coverageProbes atomic.Int64 // shard coverage RPCs issued
}

// lane is one shard's asynchronous delivery pipe: a bounded queue of
// batches drained by a dedicated sender goroutine.
type lane struct {
	ch chan *tweet.Batch
	wg sync.WaitGroup // outstanding enqueued batches

	mu       sync.Mutex
	err      error // first undelivered-batch error since the last Flush
	lastErr  string
	errAt    time.Time
	failures int64
	sent     int64
}

// NewCoordinator builds a coordinator over the shards. At least one
// shard is required; the partitioner is bound to the shard count, so the
// shard order must be identical on every coordinator of the cluster.
func NewCoordinator(shards []Shard, opts CoordinatorOptions) (*Coordinator, error) {
	part, err := NewPartitioner(len(shards))
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard: %w", err)
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 4096
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 4
	}
	c := &Coordinator{
		part:   part,
		shards: shards,
		cache:  svcache.New(opts.CacheSize),
		bufs:   make([]*tweet.Batch, len(shards)),
		lanes:  make([]*lane, len(shards)),
		batch:  batch,
	}
	for i := range c.bufs {
		b := &tweet.Batch{}
		b.Grow(batch)
		c.bufs[i] = b
	}
	for i := range c.lanes {
		l := &lane{ch: make(chan *tweet.Batch, depth)}
		c.lanes[i] = l
		go c.runLane(i, l)
	}
	return c, nil
}

// Partitioner returns the routing rule.
func (c *Coordinator) Partitioner() Partitioner { return c.part }

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// runLane drains one shard's queue. Delivery errors are latched on the
// lane — surfaced at the next Flush and in Health — and the records of
// the failed batch are lost from this coordinator's perspective
// (delivery is at-least-once end to end; the shard may hold part of the
// batch).
func (c *Coordinator) runLane(i int, l *lane) {
	for batch := range l.ch {
		err := c.shards[i].Ingest(batch)
		l.mu.Lock()
		if err != nil {
			if l.err == nil {
				l.err = fmt.Errorf("cluster: shard %d ingest: %w", i, err)
			}
			l.lastErr = err.Error()
			l.errAt = time.Now()
			l.failures++
		} else {
			l.sent += int64(batch.Len())
		}
		l.mu.Unlock()
		l.wg.Done()
	}
}

// Close drains and stops the lane senders. The coordinator must not be
// used afterwards.
func (c *Coordinator) Close() error {
	err := c.Flush()
	if c.closed.CompareAndSwap(false, true) {
		for _, l := range c.lanes {
			close(l.ch)
		}
	}
	return err
}

// Add routes one record toward its owning shard, enqueueing a batch send
// whenever the shard's buffer fills. Safe for concurrent use; a full
// shard queue blocks (backpressure).
func (c *Coordinator) Add(t tweet.Tweet) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("%w: %w", live.ErrBadInput, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.part.Partition(t.UserID)
	c.bufs[i].Append(t)
	if c.bufs[i].Len() >= c.batch {
		c.enqueueLocked(i)
	}
	return nil
}

// AddBatch routes a whole columnar batch, splitting it across the owning
// shards by the UserID column and enqueueing any shard buffer that
// fills. The batch is validated once up front and only read; ownership
// stays with the caller. Safe for concurrent use; a full shard queue
// blocks (backpressure).
func (c *Coordinator) AddBatch(b *tweet.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("%w: %w", live.ErrBadInput, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for r := 0; r < b.Len(); r++ {
		i := c.part.Partition(b.UserID[r])
		c.bufs[i].Append(b.Row(r))
		if c.bufs[i].Len() >= c.batch {
			c.enqueueLocked(i)
		}
	}
	return nil
}

// enqueueLocked hands shard i's buffered records to its lane. Caller
// holds c.mu. The send into the bounded channel may block — that is the
// backpressure contract — and lane workers never take c.mu, so the wait
// cannot deadlock.
func (c *Coordinator) enqueueLocked(i int) {
	if c.bufs[i].Len() == 0 {
		return
	}
	batch := c.bufs[i]
	fresh := &tweet.Batch{}
	fresh.Grow(c.batch)
	c.bufs[i] = fresh
	c.ingested.Add(int64(batch.Len()))
	l := c.lanes[i]
	l.wg.Add(1)
	l.ch <- batch
}

// Flush pushes every buffered record out, waits for all in-flight
// batches to deliver, flushes the shards, and reports the first delivery
// error latched since the previous Flush.
func (c *Coordinator) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.bufs {
		c.enqueueLocked(i)
	}
	var firstErr error
	for _, l := range c.lanes {
		l.wg.Wait()
		l.mu.Lock()
		if firstErr == nil && l.err != nil {
			firstErr = l.err
		}
		l.err = nil
		l.mu.Unlock()
	}
	// Shard flushes fan out concurrently: each one may cut a store
	// segment, and the point of partitioning is that shards do not wait
	// on one another.
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			errs[i] = s.Flush()
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if firstErr == nil && err != nil {
			firstErr = fmt.Errorf("cluster: shard %d flush: %w", i, err)
		}
	}
	return firstErr
}

// IngestNDJSON drains an NDJSON stream through the coordinator and
// flushes at the end, returning how many records the stream contributed
// — the cluster-mode twin of live.Ingestor.IngestNDJSON, riding the same
// shared loop and error contract (live.ErrBadInput marks the caller's
// records).
func (c *Coordinator) IngestNDJSON(r io.Reader) (int, error) {
	return live.DrainNDJSON(r, c.Add, c.Flush)
}

// IngestBinary drains a binary batch stream through the coordinator and
// flushes at the end — the cluster-mode twin of
// live.Ingestor.IngestBinary. Frames split across shard lanes by the
// UserID column without ever materialising per-record values.
func (c *Coordinator) IngestBinary(r io.Reader) (int, error) {
	return live.DrainBinary(r, 0, c.AddBatch, c.Flush)
}

// Ingested returns the number of records routed into shard lanes.
func (c *Coordinator) Ingested() int64 { return c.ingested.Load() }

// PartialFetches returns the number of shard fold RPCs issued — the
// quantity warm cache hits keep flat (the §8 "zero shard scans"
// assertion).
func (c *Coordinator) PartialFetches() int64 { return c.partialFetches.Load() }

// CacheStats exposes the snapshot cache counters.
func (c *Coordinator) CacheStats() (hits, misses int64) { return c.cache.Stats() }

// scatter runs fn against every shard concurrently and returns the
// per-shard results, failing on the first error.
func scatter[T any](shards []Shard, fn func(Shard) (T, error)) ([]T, error) {
	out := make([]T, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			out[i], errs[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// coverageFingerprint scatters the cheap coverage probe and folds the
// shards' keys into one fingerprint-sum: each shard's 64-bit coverage
// key, rotated by its shard index (so two shards swapping coverage do
// not cancel), summed with wraparound. The fingerprint moves exactly
// when some shard's covered buckets changed — the cluster-wide cache
// validity component.
func (c *Coordinator) coverageFingerprint(req core.Request) (string, error) {
	keys, err := scatter(c.shards, func(s Shard) (string, error) {
		c.coverageProbes.Add(1)
		return s.Coverage(req)
	})
	if err != nil {
		return "", err
	}
	var sum uint64
	for i, k := range keys {
		v, err := strconv.ParseUint(k, 16, 64)
		if err != nil {
			return "", fmt.Errorf("cluster: shard %d coverage key %q: %w", i, k, err)
		}
		sum += bits.RotateLeft64(v, i&63)
	}
	return fmt.Sprintf("%d:%016x", len(keys), sum), nil
}

// Query answers req by scatter-gather: coverage probes build the cache
// key; on a miss every shard folds its partial concurrently and the
// merged pass is assembled through the exact single-node float pipeline
// (core.AssembleFolded), so the result is bit-identical to a single-node
// Study.Execute over the union substream. cached reports a warm hit,
// which costs the probes and nothing else.
func (c *Coordinator) Query(req core.Request) (*core.Result, bool, error) {
	if _, err := core.PlanRequest(req); err != nil {
		return nil, false, err
	}
	fp, err := c.coverageFingerprint(req)
	if err != nil {
		return nil, false, err
	}
	return c.cache.Get(req.Key()+"|cf="+fp, func() (*core.Result, error) {
		parts, err := scatter(c.shards, func(s Shard) (*live.ShardPartial, error) {
			c.partialFetches.Add(1)
			return s.Partial(req)
		})
		if err != nil {
			return nil, err
		}
		merged, err := MergePartials(req, parts)
		if err != nil {
			return nil, err
		}
		return core.AssembleFolded(req, merged)
	})
}

// ShardStatus is one shard's entry in the coordinator's health report.
type ShardStatus struct {
	Index int  `json:"index"`
	OK    bool `json:"ok"`
	// Degraded marks a shard whose ingest lane has recorded delivery
	// failures; LastError/LastErrorAt describe the most recent one.
	Degraded    bool        `json:"degraded,omitempty"`
	LastError   string      `json:"last_error,omitempty"`
	LastErrorAt string      `json:"last_error_at,omitempty"`
	Failures    int64       `json:"failures,omitempty"`
	Delivered   int64       `json:"delivered"`
	Queue       int         `json:"queue"`
	Health      ShardHealth `json:"health"`
}

// Health probes every shard and combines the liveness with the lanes'
// delivery state — the payload of the coordinator's /healthz.
func (c *Coordinator) Health() []ShardStatus {
	out := make([]ShardStatus, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			st := ShardStatus{Index: i}
			h, err := s.Health()
			st.OK = err == nil
			st.Health = h
			if err != nil {
				st.LastError = err.Error()
			}
			l := c.lanes[i]
			st.Queue = len(l.ch)
			l.mu.Lock()
			st.Delivered = l.sent
			st.Failures = l.failures
			if l.failures > 0 {
				st.Degraded = true
				st.LastError = l.lastErr
				st.LastErrorAt = l.errAt.UTC().Format(time.RFC3339)
			}
			l.mu.Unlock()
			out[i] = st
		}(i, s)
	}
	wg.Wait()
	return out
}
