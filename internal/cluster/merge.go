package cluster

import (
	"fmt"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/geo"
	"geomob/internal/live"
	"geomob/internal/mobility"
)

// MergePartials folds the user-disjoint shard partials of one request
// into the single core.FoldedPass that core.AssembleFolded consumes —
// the gather half of scatter-gather. Exactness (DESIGN.md §8):
//
//   - tweet counts, span bounds, per-area unique-user counts and flow
//     matrices are whole-number sums / min-max reductions, exact in any
//     order; a user contributes to each of them on exactly one shard
//     because the partitioner keeps trajectories whole;
//   - the Table I series are rebuilt by interleaving the shards' per-user
//     records in ascending user id — the canonical serial order — and
//     flattening exactly as a local fold would: the per-user waiting and
//     displacement series were computed whole on the owning shard, and
//     the gyration radius is derived from the shipped addends with the
//     same mobility.GyrationRadiusKM call, so every float carries the
//     bits a single-node pass would have produced.
//
// A user id appearing on two shards violates the partitioning contract
// and is reported as an error rather than silently double-counted.
func MergePartials(req core.Request, parts []*live.ShardPartial) (*core.FoldedPass, error) {
	info, err := core.PlanRequest(req)
	if err != nil {
		return nil, err
	}
	gaz := census.Australia()
	f := &core.FoldedPass{BBox: geo.EmptyBBox()}
	for si, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("cluster: merge: shard %d returned no partial", si)
		}
		if len(p.Scales) != len(info.Scales) {
			return nil, fmt.Errorf("cluster: merge: shard %d folded %d scales, plan has %d",
				si, len(p.Scales), len(info.Scales))
		}
		for i, sc := range info.Scales {
			if p.Scales[i] != sc {
				return nil, fmt.Errorf("cluster: merge: shard %d scale %d is %s, plan wants %s",
					si, i, p.Scales[i], sc)
			}
		}
		f.Tweets += p.Tweets
		if p.Seen {
			f.BBox = f.BBox.Union(p.BBox)
			if !f.Seen || p.FirstTS < f.FirstTS {
				f.FirstTS = p.FirstTS
			}
			if !f.Seen || p.LastTS > f.LastTS {
				f.LastTS = p.LastTS
			}
			f.Seen = true
		}
	}

	scaleAreas := func(sc census.Scale) ([]census.Area, error) {
		rs, err := gaz.Regions(sc)
		if err != nil {
			return nil, fmt.Errorf("cluster: merge: regions for %s: %w", sc, err)
		}
		return rs.Areas, nil
	}
	if info.Count {
		f.Counts = map[census.Scale][]float64{}
		for _, sc := range info.Scales {
			areas, err := scaleAreas(sc)
			if err != nil {
				return nil, err
			}
			sum := make([]float64, len(areas))
			for si, p := range parts {
				c := p.Counts[sc]
				if len(c) != len(sum) {
					return nil, fmt.Errorf("cluster: merge: shard %d counts for %s: got %d areas, want %d",
						si, sc, len(c), len(sum))
				}
				for i, v := range c {
					sum[i] += v
				}
			}
			f.Counts[sc] = sum
		}
	}
	if info.Metro500 {
		rs, err := gaz.Regions(census.ScaleMetropolitan)
		if err != nil {
			return nil, err
		}
		sum := make([]float64, len(rs.Areas))
		for si, p := range parts {
			if len(p.Metro500) != len(sum) {
				return nil, fmt.Errorf("cluster: merge: shard %d metro 0.5 km counts: got %d areas, want %d",
					si, len(p.Metro500), len(sum))
			}
			for i, v := range p.Metro500 {
				sum[i] += v
			}
		}
		f.Metro500 = sum
	}
	if info.Extract {
		f.Flows = map[census.Scale]*mobility.FlowMatrix{}
		for _, sc := range info.Scales {
			areas, err := scaleAreas(sc)
			if err != nil {
				return nil, err
			}
			fm := mobility.NewFlowMatrix(areas)
			for si, p := range parts {
				src := p.Flows[sc]
				if src == nil || len(src.Flows) != len(areas) {
					return nil, fmt.Errorf("cluster: merge: shard %d flow matrix for %s missing or mis-sized", si, sc)
				}
				if err := fm.Merge(src); err != nil {
					return nil, fmt.Errorf("cluster: merge: shard %d flows for %s: %w", si, sc, err)
				}
			}
			f.Flows[sc] = fm
		}
	}
	if info.Stats {
		st, err := mergeUsers(parts)
		if err != nil {
			return nil, err
		}
		st.Tweets = int(f.Tweets)
		f.Stats = st
	}
	return f, nil
}

// mergeUsers interleaves the shards' per-user trajectory records in
// ascending user id and flattens them into the Table I series, exactly
// as a serial pass emits them.
func mergeUsers(parts []*live.ShardPartial) (*mobility.Stats, error) {
	st := &mobility.Stats{}
	heads := make([]int, len(parts))
	for {
		best, found := -1, false
		for pi, p := range parts {
			if heads[pi] >= len(p.Users) {
				continue
			}
			id := p.Users[heads[pi]].ID
			if !found || id < parts[best].Users[heads[best]].ID {
				best, found = pi, true
				continue
			}
			if id == parts[best].Users[heads[best]].ID {
				return nil, fmt.Errorf("cluster: merge: user %d present on shards %d and %d — partitioning contract violated",
					id, best, pi)
			}
		}
		if !found {
			break
		}
		u := &parts[best].Users[heads[best]]
		heads[best]++
		st.Users++
		st.TweetsPerUser = append(st.TweetsPerUser, float64(u.Tweets))
		st.WaitingSecs = append(st.WaitingSecs, u.Waits...)
		st.DisplacementsKM = append(st.DisplacementsKM, u.Disps...)
		st.CellsPerUser = append(st.CellsPerUser, float64(u.DistinctCells))
		st.GyrationKM = append(st.GyrationKM, mobility.GyrationRadiusKM(u.SumX, u.SumY, u.SumZ, int(u.Tweets)))
	}
	return st, nil
}
