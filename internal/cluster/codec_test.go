package cluster

import (
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/synth"
	"geomob/internal/testx"
)

// codecAggregator builds a ring loaded with a small corpus, returning
// the ring and the corpus's timestamp span.
func codecAggregator(t *testing.T) (*live.Aggregator, int64, int64) {
	t.Helper()
	gen, err := synth.NewGenerator(synth.DefaultConfig(300, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	all, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := live.NewAggregator(live.Options{BucketWidth: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Ingest(all); err != nil {
		t.Fatal(err)
	}
	minTS, maxTS := all[0].TS, all[0].TS
	for _, tw := range all {
		minTS = min(minTS, tw.TS)
		maxTS = max(maxTS, tw.TS)
	}
	return agg, minTS, maxTS
}

// TestPartialCodecRoundTrip: encode→decode is the identity, bit for bit,
// across request shapes exercising every section of the format (full
// study, stats-only, flows-only, windowed subsets, empty windows).
func TestPartialCodecRoundTrip(t *testing.T) {
	agg, minTS, maxTS := codecAggregator(t)
	mid := minTS + (maxTS-minTS)/2
	reqs := []core.Request{
		{},
		{Analyses: []core.Analysis{core.AnalysisStats}},
		{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleState}},
		{Analyses: []core.Analysis{core.AnalysisPopulation}},
		{From: time.UnixMilli(minTS + 1).UTC(), To: time.UnixMilli(mid).UTC()},
		{From: time.UnixMilli(maxTS + 10).UTC(), To: time.UnixMilli(maxTS + 20).UTC()}, // matches nothing
	}
	for ri, req := range reqs {
		p, err := agg.FoldPartial(req)
		if err != nil {
			t.Fatalf("req %d (%s): fold partial: %v", ri, req.Key(), err)
		}
		data := EncodePartial(p)
		q, err := DecodePartial(data)
		if err != nil {
			t.Fatalf("req %d (%s): decode: %v", ri, req.Key(), err)
		}
		if !testx.ValuesBitEqual(p, q) {
			t.Fatalf("req %d (%s): decoded partial is not bit-identical (%d wire bytes)", ri, req.Key(), len(data))
		}
	}
}

// TestPartialCodecRejectsCorruption: truncations, trailing garbage and a
// bad magic must error, never yield a partial.
func TestPartialCodecRejectsCorruption(t *testing.T) {
	agg, _, _ := codecAggregator(t)
	p, err := agg.FoldPartial(core.Request{})
	if err != nil {
		t.Fatal(err)
	}
	data := EncodePartial(p)

	if _, err := DecodePartial(data[:0]); err == nil {
		t.Fatal("empty buffer decoded")
	}
	for _, cut := range []int{1, 7, len(data) / 2, len(data) - 1} {
		if _, err := DecodePartial(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodePartial(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := DecodePartial(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestPartialCodecV1Compat: a version-1 payload (no coverage section)
// still decodes — everything but the coverage accounting round-trips,
// so a rolling upgrade degrades only the explain breakdown.
func TestPartialCodecV1Compat(t *testing.T) {
	agg, _, _ := codecAggregator(t)
	p, err := agg.FoldPartial(core.Request{Analyses: []core.Analysis{core.AnalysisStats}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Coverage.Buckets == 0 {
		t.Fatal("fold recorded no coverage; v1 strip test would be vacuous")
	}
	data := EncodePartial(p)
	// Strip the trailing v2 coverage section (u8 ntiers + 16 bytes per
	// tier + 3×u32 + i64) and patch the version field back to 1.
	covLen := 1 + 16*len(p.Coverage.TierFolds) + 4 + 4 + 4 + 8
	v1 := append([]byte(nil), data[:len(data)-covLen]...)
	v1[4], v1[5] = 1, 0
	q, err := DecodePartial(v1)
	if err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	if q.Coverage.Buckets != 0 || q.Coverage.TierFolds != nil {
		t.Fatalf("v1 decode invented coverage: %+v", q.Coverage)
	}
	q.Coverage = p.Coverage
	if !testx.ValuesBitEqual(p, q) {
		t.Fatal("v1 decode lost non-coverage fields")
	}
	// An unknown future version still errors.
	bad := append([]byte(nil), data...)
	bad[4], bad[5] = 9, 0
	if _, err := DecodePartial(bad); err == nil {
		t.Fatal("version 9 accepted")
	}
}

// TestMergeRejectsDuplicateUsers: the same user appearing on two shards
// violates the partitioning contract and must be an error, not a silent
// double count.
func TestMergeRejectsDuplicateUsers(t *testing.T) {
	agg, _, _ := codecAggregator(t)
	req := core.Request{Analyses: []core.Analysis{core.AnalysisStats}}
	p1, err := agg.FoldPartial(req)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := agg.FoldPartial(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergePartials(req, []*live.ShardPartial{p1, p2}); err == nil {
		t.Fatal("duplicate users across shards merged without error")
	}
}
