package cluster

import (
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/synth"
	"geomob/internal/testx"
)

// codecAggregator builds a ring loaded with a small corpus, returning
// the ring and the corpus's timestamp span.
func codecAggregator(t *testing.T) (*live.Aggregator, int64, int64) {
	t.Helper()
	gen, err := synth.NewGenerator(synth.DefaultConfig(300, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	all, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := live.NewAggregator(live.Options{BucketWidth: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Ingest(all); err != nil {
		t.Fatal(err)
	}
	minTS, maxTS := all[0].TS, all[0].TS
	for _, tw := range all {
		minTS = min(minTS, tw.TS)
		maxTS = max(maxTS, tw.TS)
	}
	return agg, minTS, maxTS
}

// TestPartialCodecRoundTrip: encode→decode is the identity, bit for bit,
// across request shapes exercising every section of the format (full
// study, stats-only, flows-only, windowed subsets, empty windows).
func TestPartialCodecRoundTrip(t *testing.T) {
	agg, minTS, maxTS := codecAggregator(t)
	mid := minTS + (maxTS-minTS)/2
	reqs := []core.Request{
		{},
		{Analyses: []core.Analysis{core.AnalysisStats}},
		{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleState}},
		{Analyses: []core.Analysis{core.AnalysisPopulation}},
		{From: time.UnixMilli(minTS + 1).UTC(), To: time.UnixMilli(mid).UTC()},
		{From: time.UnixMilli(maxTS + 10).UTC(), To: time.UnixMilli(maxTS + 20).UTC()}, // matches nothing
	}
	for ri, req := range reqs {
		p, err := agg.FoldPartial(req)
		if err != nil {
			t.Fatalf("req %d (%s): fold partial: %v", ri, req.Key(), err)
		}
		data := EncodePartial(p)
		q, err := DecodePartial(data)
		if err != nil {
			t.Fatalf("req %d (%s): decode: %v", ri, req.Key(), err)
		}
		if !testx.ValuesBitEqual(p, q) {
			t.Fatalf("req %d (%s): decoded partial is not bit-identical (%d wire bytes)", ri, req.Key(), len(data))
		}
	}
}

// TestPartialCodecRejectsCorruption: truncations, trailing garbage and a
// bad magic must error, never yield a partial.
func TestPartialCodecRejectsCorruption(t *testing.T) {
	agg, _, _ := codecAggregator(t)
	p, err := agg.FoldPartial(core.Request{})
	if err != nil {
		t.Fatal(err)
	}
	data := EncodePartial(p)

	if _, err := DecodePartial(data[:0]); err == nil {
		t.Fatal("empty buffer decoded")
	}
	for _, cut := range []int{1, 7, len(data) / 2, len(data) - 1} {
		if _, err := DecodePartial(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodePartial(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := DecodePartial(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestMergeRejectsDuplicateUsers: the same user appearing on two shards
// violates the partitioning contract and must be an error, not a silent
// double count.
func TestMergeRejectsDuplicateUsers(t *testing.T) {
	agg, _, _ := codecAggregator(t)
	req := core.Request{Analyses: []core.Analysis{core.AnalysisStats}}
	p1, err := agg.FoldPartial(req)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := agg.FoldPartial(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergePartials(req, []*live.ShardPartial{p1, p2}); err == nil {
		t.Fatal("duplicate users across shards merged without error")
	}
}
