package cluster

import (
	"fmt"

	"geomob/internal/ring"
	"geomob/internal/tweet"
)

// Handoff — live membership changes without losing exactness.
//
// Both AddShard and RemoveShard run the same three-act protocol under
// the ingest mutex (write quiescence is free: nothing new can ship
// while we hold it):
//
//  1. settle — ship every buffered slot batch and wait for the lanes to
//     drain, so the handoff sources hold their slots' complete
//     substreams. A member that is down and still owes deliveries
//     blocks the change: moving a slot off an incomplete copy would
//     lose acknowledged records.
//  2. stream — for every slot the ring diff moves onto a member that
//     did not hold it, replay the slot's canonical export from a
//     settled current replica into the destination via Deliver, under
//     a deterministic handoff sender identity. Because the export
//     order is canonical and the sequence numbers are frame indexes,
//     an interrupted handoff re-run regenerates the identical stream
//     and the receiver's (sender, seq) dedup resumes where it left
//     off.
//  3. flip — swap the (ring, shards, lanes) triple atomically under
//     topoMu. Queries that started before the flip finish against the
//     old topology; queries after it see the new one. Both are exact,
//     because the moved slots' substreams are already complete at
//     their new homes before the flip.

// AddShard grows the cluster by one member, streaming the slots the
// ring assigns it from their current replicas before the new topology
// takes effect. Ingest is quiesced for the duration.
func (c *Coordinator) AddShard(s Shard) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("cluster: coordinator closed")
	}
	if err := c.settleLocked(-1); err != nil {
		return err
	}
	old := c.ring
	name := memberName(len(old.Members()))
	grown, err := old.Join(name)
	if err != nil {
		return err
	}
	newIdx := len(old.Members())
	for _, mv := range ring.Diff(old, grown) {
		joins := false
		for _, nd := range mv.Added {
			if nd == newIdx {
				joins = true
			}
		}
		if !joins {
			continue
		}
		if err := c.streamSlotLocked(mv.Slot, old.Replicas(mv.Slot), s, grown.Version()); err != nil {
			return err
		}
	}
	c.topoMu.Lock()
	c.ring = grown
	c.shards = append(c.shards, s)
	l := newLane(newIdx, s, c.sp, c.depth, c.retryBase, c.retryMax)
	c.lanes = append(c.lanes, l)
	c.topoMu.Unlock()
	c.wg.Add(1)
	go l.run(&c.wg)
	return nil
}

// RemoveShard retires live member idx. Slots that lose a replica are
// first streamed to the members the ring promotes in its place; the
// departing member's undelivered spool entries are then released. With
// R == 1 the departing member is itself the only source, so it must be
// reachable — removing a dead sole-copy member would lose data, and is
// refused.
func (c *Coordinator) RemoveShard(idx int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("cluster: coordinator closed")
	}
	old := c.ring
	members := old.Members()
	if idx < 0 || idx >= len(members) || members[idx].Gone {
		return fmt.Errorf("cluster: no live member %d", idx)
	}
	if err := c.settleLocked(idx); err != nil {
		return err
	}
	shrunk, err := old.Leave(idx)
	if err != nil {
		return err
	}
	for _, mv := range ring.Diff(old, shrunk) {
		// Sources: the slot's settled current replicas other than the
		// departing member; with R == 1 the departing member itself.
		var sources []int
		for _, nd := range old.Replicas(mv.Slot) {
			if nd != idx {
				sources = append(sources, nd)
			}
		}
		if len(sources) == 0 {
			sources = []int{idx}
		}
		for _, add := range mv.Added {
			if err := c.streamSlotLocked(mv.Slot, sources, c.shards[add], shrunk.Version()); err != nil {
				return err
			}
		}
	}
	if err := c.sp.AckNode(idx); err != nil {
		return err
	}
	c.topoMu.Lock()
	c.ring = shrunk
	l := c.lanes[idx]
	c.topoMu.Unlock()
	l.close()
	return nil
}

// settleLocked ships all buffers and waits for every lane to drain,
// then verifies no member except skip still owes deliveries. Caller
// holds c.mu.
func (c *Coordinator) settleLocked(skip int) error {
	for k := range c.bufs {
		if err := c.shipLocked(k); err != nil {
			return err
		}
	}
	for _, l := range c.lanes {
		l.waitSettled()
	}
	for i := range c.lanes {
		if i == skip {
			continue
		}
		if pending := c.sp.PendingRowsNode(i); pending > 0 {
			return fmt.Errorf("cluster: membership change blocked: member %d still owes %d spooled rows (recover or remove it first)", i, pending)
		}
	}
	return nil
}

// streamSlotLocked replays slot's content from the first reachable
// source into dst. Shape-matched ends stream snapshot blobs — the
// source's pre-resolved bucket columns, which the receiver merges
// without re-resolving assignments; otherwise the canonical record
// export replays via Deliver. The choice is made once, up front, from
// both ends' health reports: the two paths use distinct sender
// namespaces, so switching modes mid-slot would defeat the (sender,
// seq) dedup and double-apply — a failed stream retries sources in the
// same mode instead. Either way the sender identity is a pure function
// of (slot, target ring version) and sequence numbers are frame
// indexes over a deterministic stream, so retries and source failover
// deduplicate instead of double-applying. Caller holds c.mu.
func (c *Coordinator) streamSlotLocked(slot int, sources []int, dst Shard, version uint64) error {
	if recv, ok := dst.(SnapshotReceiver); ok && c.snapHandoffOK(sources, dst) {
		return c.streamSlotSnapLocked(slot, sources, recv, version)
	}
	sender := fmt.Sprintf("handoff:%d:%016x", slot, version)
	var lastErr error
	for _, src := range sources {
		seq := uint64(0)
		err := c.shards[src].Export(slot, func(b *tweet.Batch) error {
			frame, err := tweet.AppendFrame(nil, b)
			if err != nil {
				return err
			}
			seq++
			return dst.Deliver(sender, seq, slot, frame)
		})
		if err == nil {
			return nil
		}
		lastErr = err
	}
	if lastErr != nil {
		return fmt.Errorf("cluster: handoff of slot %d failed on every source: %w", slot, lastErr)
	}
	return nil
}

// snapHandoffOK reports whether snapshot streaming is sound for this
// handoff: every source exports snapshots, and every end reports the
// same non-empty shape hash — the receiver will validate each blob
// against its own shape anyway, but checking health up front avoids
// committing to a stream that would be permanently rejected.
func (c *Coordinator) snapHandoffOK(sources []int, dst Shard) bool {
	dh, err := dst.Health()
	if err != nil || dh.ShapeHash == "" {
		return false
	}
	for _, src := range sources {
		if _, ok := c.shards[src].(SnapshotExporter); !ok {
			return false
		}
		sh, err := c.shards[src].Health()
		if err != nil || sh.ShapeHash != dh.ShapeHash {
			return false
		}
	}
	return true
}

// streamSlotSnapLocked is the snapshot-streaming arm of
// streamSlotLocked, under its own sender namespace.
func (c *Coordinator) streamSlotSnapLocked(slot int, sources []int, dst SnapshotReceiver, version uint64) error {
	sender := fmt.Sprintf("handoffsnap:%d:%016x", slot, version)
	var lastErr error
	for _, src := range sources {
		seq := uint64(0)
		err := c.shards[src].(SnapshotExporter).ExportSnap(slot, func(blob []byte) error {
			seq++
			return dst.DeliverSnap(sender, seq, slot, blob)
		})
		if err == nil {
			return nil
		}
		lastErr = err
	}
	if lastErr != nil {
		return fmt.Errorf("cluster: snapshot handoff of slot %d failed on every source: %w", slot, lastErr)
	}
	return nil
}
