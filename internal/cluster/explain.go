package cluster

import (
	"context"
	"errors"
	"sort"
	"sync"

	"geomob/internal/live"
	"geomob/internal/obs"
)

// ShardExplain is one member's contribution to an EXPLAIN ANALYZE
// per-shard breakdown: which slots it served, how much it folded, how
// long the fold RPC took, and its bucket-coverage accounting as carried
// back over the partial codec (DESIGN.md §13).
type ShardExplain struct {
	Member   string            `json:"member"`
	Node     int               `json:"node"`
	Slots    int               `json:"slots"`
	Rows     int64             `json:"rows"`
	Users    int               `json:"users,omitempty"`
	FoldMs   float64           `json:"fold_ms"`
	Coverage live.FoldCoverage `json:"coverage"`
}

// ClusterExplain is the coordinator's explain section: the serving
// topology (ring version, coverage fingerprint, per-member scatter),
// failovers burned by this query, and — on a cache miss computed by
// this very request — the per-shard fold breakdown. Requests answered
// from the snapshot cache (or coalesced onto another caller's compute
// by the single-flight cache) report the topology but no shard folds:
// no folds happened on their behalf.
type ClusterExplain struct {
	RingVersion string         `json:"ring_version"`
	Fingerprint string         `json:"coverage_fingerprint"`
	Members     int            `json:"members"`
	Failovers   int            `json:"failovers"`
	Shards      []ShardExplain `json:"shards,omitempty"`
}

// shardExplainRecorder accumulates per-shard fragments across the
// concurrent partial fetches of one query. A nil recorder (explain not
// requested) records nothing, keeping the plain path free of it.
type shardExplainRecorder struct {
	mu    sync.Mutex
	frags []ShardExplain
}

func newShardExplainRecorder(ctx context.Context) *shardExplainRecorder {
	if obs.ExplainFrom(ctx) == nil {
		return nil
	}
	return &shardExplainRecorder{}
}

func (r *shardExplainRecorder) add(node int, slots []int, ps []*live.ShardPartial, foldMs float64) {
	if r == nil {
		return
	}
	fe := ShardExplain{Member: memberName(node), Node: node, Slots: len(slots), FoldMs: foldMs}
	for _, p := range ps {
		fe.Rows += p.Tweets
		fe.Users += len(p.Users)
		fe.Coverage.Merge(p.Coverage)
	}
	r.mu.Lock()
	r.frags = append(r.frags, fe)
	r.mu.Unlock()
}

func (r *shardExplainRecorder) fragments() []ShardExplain {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]ShardExplain(nil), r.frags...)
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// MetricsScraper is the optional Shard capability /metrics/cluster
// federates over: fetching the member's raw metrics exposition.
// HTTPShard implements it; in-process LocalShards do not (their series
// already live in the coordinator process's own registries).
type MetricsScraper interface {
	ScrapeMetrics(ctx context.Context) ([]byte, error)
}

// Federate concurrently scrapes every member's metrics endpoint for
// /metrics/cluster. The result always has one entry per member, in
// member order: a reachable scraper carries its exposition body, a
// failed scrape its error (rendered as geomob_member_up 0 by
// obs.MergeExpositions), a member marked gone an error without a probe,
// and an in-process member an empty body — up, contributing no remote
// series.
func (c *Coordinator) Federate(ctx context.Context) []obs.ScrapeResult {
	c.topoMu.RLock()
	rg := c.ring
	shards := append([]Shard(nil), c.shards...)
	c.topoMu.RUnlock()
	members := rg.Members()
	out := make([]obs.ScrapeResult, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		out[i].Node = members[i].Name
		if members[i].Gone {
			out[i].Err = errors.New("member marked gone")
			continue
		}
		sc, ok := shards[i].(MetricsScraper)
		if !ok {
			out[i].Body = []byte{}
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i].Body, out[i].Err = sc.ScrapeMetrics(ctx)
		}(i)
	}
	wg.Wait()
	return out
}
