package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/ring"
	"geomob/internal/synth"
	"geomob/internal/testx"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// chaosShard wraps a Shard with an injectable outage and a swappable
// inner — setDown(true) is a crash, swap(inner) is the process coming
// back (possibly as a fresh LocalShard rebuilt from the same store,
// which is exactly what kill -9 plus restart produces).
type chaosShard struct {
	mu    sync.Mutex
	inner Shard
	down  bool
}

func newChaosShard(inner Shard) *chaosShard { return &chaosShard{inner: inner} }

func (c *chaosShard) setDown(down bool) {
	c.mu.Lock()
	c.down = down
	c.mu.Unlock()
}

func (c *chaosShard) swap(inner Shard) {
	c.mu.Lock()
	c.inner = inner
	c.down = false
	c.mu.Unlock()
}

func (c *chaosShard) get() (Shard, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return nil, fmt.Errorf("%w: injected crash", ErrUnavailable)
	}
	return c.inner, nil
}

func (c *chaosShard) Deliver(sender string, seq uint64, slot int, frame []byte) error {
	s, err := c.get()
	if err != nil {
		return err
	}
	return s.Deliver(sender, seq, slot, frame)
}

func (c *chaosShard) Ingest(b *tweet.Batch) error {
	s, err := c.get()
	if err != nil {
		return err
	}
	return s.Ingest(b)
}

func (c *chaosShard) Flush() error {
	s, err := c.get()
	if err != nil {
		return err
	}
	return s.Flush()
}

func (c *chaosShard) Partials(ctx context.Context, req core.Request, slots []int) ([]*live.ShardPartial, error) {
	s, err := c.get()
	if err != nil {
		return nil, err
	}
	return s.Partials(ctx, req, slots)
}

func (c *chaosShard) Coverage(ctx context.Context, req core.Request, slots []int) (string, error) {
	s, err := c.get()
	if err != nil {
		return "", err
	}
	return s.Coverage(ctx, req, slots)
}

func (c *chaosShard) Export(slot int, fn func(*tweet.Batch) error) error {
	s, err := c.get()
	if err != nil {
		return err
	}
	return s.Export(slot, fn)
}

func (c *chaosShard) Health() (ShardHealth, error) {
	s, err := c.get()
	if err != nil {
		return ShardHealth{}, err
	}
	return s.Health()
}

func failoverCorpus(t *testing.T, n int, seedA, seedB uint64) []tweet.Tweet {
	t.Helper()
	gen, err := synth.NewGenerator(synth.DefaultConfig(n, seedA, seedB))
	if err != nil {
		t.Fatal(err)
	}
	all, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	// Quantise coordinates to the storage codec's microdegree grid, as
	// real 6-decimal feed data already is. Store-backed shards rebuild
	// their in-memory state from segments on restart, and segments hold
	// microdegrees — a corpus off the grid could never round-trip a
	// crash bit-identically, by design of the storage codec.
	for i := range all {
		all[i].Lat = tweet.DegreesFromMicro(tweet.Microdegrees(all[i].Lat))
		all[i].Lon = tweet.DegreesFromMicro(tweet.Microdegrees(all[i].Lon))
	}
	return all
}

func singleNodeRef(t *testing.T, all []tweet.Tweet, req core.Request) *core.Result {
	t.Helper()
	sorted := append([]tweet.Tweet(nil), all...)
	sort.Sort(tweet.ByUserTime(sorted))
	ref, err := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 1}).
		Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func waitNodeDrained(t *testing.T, c *Coordinator, node int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if c.sp.PendingRowsNode(node) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %d still owes %d spooled rows after %v", node, c.sp.PendingRowsNode(node), within)
}

func fastRetry() CoordinatorOptions {
	return CoordinatorOptions{BatchSize: 64, RetryBase: 2 * time.Millisecond, RetryMax: 20 * time.Millisecond}
}

// TestLaneRedeliveryAfterRecovery is the silent-drop fix's contract,
// end to end over HTTP: an ingest accepted while a shard node is down
// is NOT lost — the coordinator reports the shard degraded with the
// batch pending and the delivery error latched, keeps retrying, and
// the node receives every record once it comes back.
func TestLaneRedeliveryAfterRecovery(t *testing.T) {
	all := failoverCorpus(t, 400, 17, 19)

	healthy, err := NewLocalShard(nil, live.Options{BucketWidth: 7 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	flakyLocal, err := NewLocalShard(nil, live.Options{BucketWidth: 7 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(flakyLocal, NodeOptions{})
	var down atomic.Bool
	down.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		node.ServeHTTP(w, r)
	}))
	defer srv.Close()

	opts := fastRetry()
	coord, err := NewCoordinator([]Shard{healthy, NewHTTPShard(srv.URL, srv.Client())}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	for _, tw := range all {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	// Flush must accept the ingest even though node 1 is down: the
	// records are spooled, not dropped.
	if err := coord.Flush(); err != nil {
		t.Fatalf("flush with a down shard must still accept: %v", err)
	}
	if got := coord.Ingested(); got != int64(len(all)) {
		t.Fatalf("accepted %d of %d records", got, len(all))
	}

	// The outage is visible, not silent: degraded, rows pending,
	// retries counted, last error latched.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sts := coord.Health()
		st := sts[1]
		if st.Degraded && st.Pending > 0 && st.Retries > 0 && st.LastError != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("outage not surfaced in health: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pending := coord.sp.PendingRowsNode(1); pending == 0 {
		t.Fatal("down node shows no pending rows")
	}

	// Recovery: the lane drains the spool into the node with no new
	// ingest calls from the client.
	down.Store(false)
	waitNodeDrained(t, coord, 1, 10*time.Second)
	if got := flakyLocal.Ingested() + healthy.Ingested(); got != int64(len(all)) {
		t.Fatalf("recovered cluster holds %d of %d records", got, len(all))
	}
	sts := coord.Health()
	if st := sts[1]; st.Degraded || st.Pending != 0 {
		t.Fatalf("recovered node still degraded: %+v", st)
	}

	// And the delivered state is exact.
	req := core.Request{}
	res, _, err := coord.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ResultsBitEqual(res, singleNodeRef(t, all, req)) {
		t.Fatal("post-recovery scatter-gather diverges from single-node execute")
	}
}

// TestQueryFailoverReplicated: with R=2 over 3 members, killing any
// single member mid-query costs nothing — every slot fails over to its
// surviving replica and the answer stays bit-identical.
func TestQueryFailoverReplicated(t *testing.T) {
	all := failoverCorpus(t, 400, 17, 19)
	chaos := make([]*chaosShard, 3)
	shards := make([]Shard, 3)
	for i := range shards {
		local, err := NewLocalShard(nil, live.Options{BucketWidth: 7 * 24 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		chaos[i] = newChaosShard(local)
		shards[i] = chaos[i]
	}
	opts := fastRetry()
	opts.Replication = 2
	coord, err := NewCoordinator(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for _, tw := range all {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}

	reqs := []core.Request{
		{},
		{Analyses: []core.Analysis{core.AnalysisPopulation}},
		{Analyses: []core.Analysis{core.AnalysisFlows}},
	}
	refs := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		refs[i] = singleNodeRef(t, all, req)
	}

	for kill := 0; kill < 3; kill++ {
		chaos[kill].setDown(true)
		for i, req := range reqs {
			res, _, err := coord.Query(req)
			if err != nil {
				t.Fatalf("kill %d req %d: %v", kill, i, err)
			}
			if !testx.ResultsBitEqual(res, refs[i]) {
				t.Fatalf("kill %d req %d: failover answer diverges", kill, i)
			}
		}
		chaos[kill].setDown(false)
	}

	// Two members down: some slot loses both replicas, and the failure
	// is precise — an UnavailableError naming the missing user-hash
	// ranges, not a wrong answer.
	chaos[0].setDown(true)
	chaos[1].setDown(true)
	var lost []int
	for k := 0; k < ring.Slots; k++ {
		rs := coord.ring.Replicas(k)
		if (rs[0] == 0 || rs[0] == 1) && (rs[1] == 0 || rs[1] == 1) {
			lost = append(lost, k)
		}
	}
	if len(lost) == 0 {
		t.Skip("no slot has replica set {0,1} under this ring; nothing to assert")
	}
	_, _, err = coord.Query(core.Request{})
	var ue *UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("query with a dead slot returned %v, want UnavailableError", err)
	}
	if len(ue.Slots) == 0 || len(ue.UserRanges()) != len(ue.Slots) {
		t.Fatalf("unavailable error names no user ranges: %+v", ue)
	}
	for _, k := range ue.Slots {
		found := false
		for _, l := range lost {
			if k == l {
				found = true
			}
		}
		if !found {
			t.Fatalf("slot %d reported unavailable but has a live replica", k)
		}
	}
}

// TestDeliverDedup: redelivering the same (sender, seq) — the lane's
// behaviour after an ambiguous failure, and the WAL's after replay —
// applies nothing twice, across restarts of the shard.
func TestDeliverDedup(t *testing.T) {
	dir := t.TempDir()
	store, err := tweetdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLocalShard(store, live.Options{BucketWidth: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	tw := tweet.Tweet{ID: 1, UserID: 42, TS: 1378000000000, Lat: -33.87, Lon: 151.21}
	slot := ring.SlotOf(tw.UserID)
	frame, err := tweet.AppendFrame(nil, tweet.BatchOf([]tweet.Tweet{tw}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Deliver("sender-a", 7, slot, frame); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Ingested(); got != 1 {
		t.Fatalf("triple delivery ingested %d records, want 1", got)
	}
	if got := store.Count(); got != 1 {
		t.Fatalf("triple delivery stored %d records, want 1", got)
	}
	// A different sender at the same seq is not a duplicate.
	if err := s.Deliver("sender-b", 7, slot, frame); err != nil {
		t.Fatal(err)
	}
	if got := s.Ingested(); got != 2 {
		t.Fatalf("distinct sender deduplicated: ingested %d, want 2", got)
	}
	// Restart: the high-water marks come back from the manifest, so a
	// spool replay across the restart still deduplicates.
	store2, err := tweetdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewLocalShard(store2, live.Options{BucketWidth: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Deliver("sender-a", 7, slot, frame); err != nil {
		t.Fatal(err)
	}
	if err := s2.Deliver("sender-b", 6, slot, frame); err != nil {
		t.Fatal(err)
	}
	if got := s2.Ingested(); got != 2 {
		t.Fatalf("post-restart redelivery not deduplicated: ingested %d, want 2 (backfill only)", got)
	}
}

// TestWALRecoveryAcrossRestart: a coordinator killed with undelivered
// spooled frames loses nothing — a new coordinator over the same WAL
// directory (same shard order) replays them, under the same persistent
// sender identity, and the recovered cluster answers exactly.
func TestWALRecoveryAcrossRestart(t *testing.T) {
	all := failoverCorpus(t, 300, 29, 31)
	walDir := t.TempDir()
	stores := []*tweetdb.Store{nil, nil}
	for i := range stores {
		st, err := tweetdb.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	newShards := func() ([]Shard, []*chaosShard) {
		chaos := make([]*chaosShard, 2)
		shards := make([]Shard, 2)
		for i := range shards {
			local, err := NewLocalShard(stores[i], live.Options{BucketWidth: 7 * 24 * time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			chaos[i] = newChaosShard(local)
			shards[i] = chaos[i]
		}
		return shards, chaos
	}

	opts := fastRetry()
	opts.WALDir = walDir
	shards, chaos := newShards()
	coord, err := NewCoordinator(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	sender := coord.SenderID()
	chaos[1].setDown(true) // node 1 dies before anything delivers to it
	for _, tw := range all {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}
	pendingBefore := coord.sp.PendingRowsNode(1)
	if pendingBefore == 0 {
		t.Fatal("node 1 should owe spooled rows")
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart" the coordinator: same WAL dir, same shard order, node 1
	// back up. The spool replays everything node 1 missed.
	shards2, _ := newShards()
	coord2, err := NewCoordinator(shards2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if coord2.SenderID() != sender {
		t.Fatalf("sender identity not persistent: %s vs %s", coord2.SenderID(), sender)
	}
	waitNodeDrained(t, coord2, 1, 10*time.Second)

	req := core.Request{}
	res, _, err := coord2.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ResultsBitEqual(res, singleNodeRef(t, all, req)) {
		t.Fatal("post-restart recovered cluster diverges from single-node execute")
	}
}

// TestHandoffJoinLeave: growing and shrinking the cluster preserves
// exactness — moved slots stream to their new homes before the ring
// version flips, and later ingest lands under the new placement.
func TestHandoffJoinLeave(t *testing.T) {
	all := failoverCorpus(t, 800, 37, 41)
	half := len(all) / 2

	newLocal := func() *LocalShard {
		s, err := NewLocalShard(nil, live.Options{BucketWidth: 7 * 24 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	opts := fastRetry()
	opts.Replication = 2
	coord, err := NewCoordinator([]Shard{newLocal(), newLocal()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for _, tw := range all[:half] {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}

	// Join: the new member receives its slots' history before serving.
	if err := coord.AddShard(newLocal()); err != nil {
		t.Fatal(err)
	}
	if got := coord.Shards(); got != 3 {
		t.Fatalf("after join: %d live members, want 3", got)
	}
	req := core.Request{}
	res, _, err := coord.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ResultsBitEqual(res, singleNodeRef(t, all[:half], req)) {
		t.Fatal("post-join answer diverges from single-node execute")
	}

	// Ingest the second half under the grown ring.
	for _, tw := range all[half:] {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}
	res, _, err = coord.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	ref := singleNodeRef(t, all, req)
	if !testx.ResultsBitEqual(res, ref) {
		t.Fatal("post-join ingest answer diverges from single-node execute")
	}

	// Leave: member 0 retires; its slots' data must survive on the
	// members the ring promotes.
	if err := coord.RemoveShard(0); err != nil {
		t.Fatal(err)
	}
	if got := coord.Shards(); got != 2 {
		t.Fatalf("after leave: %d live members, want 2", got)
	}
	res, _, err = coord.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ResultsBitEqual(res, ref) {
		t.Fatal("post-leave answer diverges from single-node execute")
	}

	// A membership change is refused while a member is down with
	// undelivered spool — it would hand off from an incomplete copy.
	coord2, err := NewCoordinator([]Shard{newChaosShard(newLocal()), newChaosShard(newLocal())}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	coord2.shards[1].(*chaosShard).setDown(true)
	for _, tw := range all[:100] {
		if err := coord2.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord2.Flush(); err != nil {
		t.Fatal(err)
	}
	if coord2.sp.PendingRowsNode(1) > 0 {
		if err := coord2.AddShard(newLocal()); err == nil {
			t.Fatal("AddShard succeeded while a member owes spooled rows")
		}
	}
}

// TestClusterChaosProperty is the issue's acceptance property, in
// process: R=2 over 3 store-backed members, one member killed (kill -9
// semantics: its ring state discarded, its store kept) in the middle of
// ingest, zero acked batches lost, queries exact throughout failover
// and after recovery.
func TestClusterChaosProperty(t *testing.T) {
	all := failoverCorpus(t, 500, 43, 47)
	half := len(all) / 2

	stores := make([]*tweetdb.Store, 3)
	chaos := make([]*chaosShard, 3)
	shards := make([]Shard, 3)
	for i := range shards {
		st, err := tweetdb.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		local, err := NewLocalShard(st, live.Options{BucketWidth: 7 * 24 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		chaos[i] = newChaosShard(local)
		shards[i] = chaos[i]
	}
	opts := fastRetry()
	opts.Replication = 2
	opts.WALDir = t.TempDir()
	coord, err := NewCoordinator(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	for _, tw := range all[:half] {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	// kill -9 member 1 mid-ingest: its in-memory rings vanish, its
	// store survives on disk.
	chaos[1].setDown(true)
	for _, tw := range all[half:] {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatalf("ingest must be accepted during the outage: %v", err)
	}
	if got := coord.Ingested(); got != int64(len(all)) {
		t.Fatalf("accepted %d of %d records", got, len(all))
	}

	// During the outage: every query exact via the surviving replicas.
	reqs := []core.Request{
		{},
		{Analyses: []core.Analysis{core.AnalysisPopulation}},
		{Analyses: []core.Analysis{core.AnalysisFlows}},
		{Analyses: []core.Analysis{core.AnalysisStats}},
	}
	refs := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		refs[i] = singleNodeRef(t, all, req)
		res, _, err := coord.Query(req)
		if err != nil {
			t.Fatalf("req %d during outage: %v", i, err)
		}
		if !testx.ResultsBitEqual(res, refs[i]) {
			t.Fatalf("req %d during outage diverges from single-node execute", i)
		}
	}

	// Restart member 1 from its surviving store; the spool replays what
	// it missed (deduplicating what its store already held).
	restarted, err := NewLocalShard(stores[1], live.Options{BucketWidth: 7 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	chaos[1].swap(restarted)
	waitNodeDrained(t, coord, 1, 10*time.Second)

	// After recovery the restarted member's copies are complete: kill
	// each OTHER member in turn and the answers still come out exact —
	// which can only happen if member 1 now holds its slots' full
	// substreams.
	for _, kill := range []int{0, 2} {
		chaos[kill].setDown(true)
		for i, req := range reqs {
			res, _, err := coord.Query(req)
			if err != nil {
				t.Fatalf("req %d with member %d down post-recovery: %v", i, kill, err)
			}
			if !testx.ResultsBitEqual(res, refs[i]) {
				t.Fatalf("req %d with member %d down post-recovery diverges", i, kill)
			}
		}
		chaos[kill].setDown(false)
	}
}
