package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/obs"
	"geomob/internal/tweet"
)

// The internal shard API. Fold requests travel as JSON bodies pairing a
// core.Request (times RFC 3339, floats by shortest representation —
// exact on round-trip) with the placement slots the coordinator wants
// this member to serve; partials come back in the binary wire codec.
// Replicated deliveries and handoff exports move whole binary batch
// frames, never re-encoded. Error status codes carry the sentinel
// semantics across the wire so a coordinator behaves identically over
// LocalShard and HTTPShard:
//
//	POST /shard/v1/ingest        NDJSON or binary batch → {"ingested": n}
//	POST /shard/v1/deliver       ?sender=&seq=&slot=, binary frame body
//	POST /shard/v1/deliver-batch ?sender=, enveloped frames body
//	POST /shard/v1/partials      {"request":…,"slots":[…]} → binary partials
//	POST /shard/v1/coverage      {"request":…,"slots":[…]} → {"coverage": key}
//	GET  /shard/v1/export        ?slot= → binary frame stream
//	GET  /shard/v1/export-snap   ?slot= → length-prefixed snapshot blobs
//	POST /shard/v1/deliver-snap  ?sender=&seq=&slot=, snapshot blob body
//	GET  /shard/v1/health        ShardHealth
//	GET  /healthz                liveness (boot-wait probes)
//
//	400 caller's request/records   422 live.ErrNotCovered
//	410 live.ErrEvicted            413 body or line too large
//
// Any transport failure or 5xx wraps ErrUnavailable on the client side
// — the coordinator's signal to fail a query over to another replica
// and to keep a delivery spooled for retry.
const (
	pathIngest       = "/shard/v1/ingest"
	pathDeliver      = "/shard/v1/deliver"
	pathDeliverBatch = "/shard/v1/deliver-batch"
	pathPartials     = "/shard/v1/partials"
	pathCoverage     = "/shard/v1/coverage"
	pathExport       = "/shard/v1/export"
	pathExportSnap   = "/shard/v1/export-snap"
	pathDeliverSnap  = "/shard/v1/deliver-snap"
	pathHealth       = "/shard/v1/health"
)

// NodeOptions configure a shard node server.
type NodeOptions struct {
	// MaxBodyBytes bounds request bodies; zero means 64 MiB. Oversized
	// requests answer 413 (like the public /v1/ingest).
	MaxBodyBytes int64
}

// DefaultMaxBodyBytes is the request-body bound services apply when the
// operator configures none.
const DefaultMaxBodyBytes int64 = 64 << 20

// Node serves one LocalShard over the internal shard API.
type Node struct {
	shard *LocalShard
	mux   *http.ServeMux
	maxB  int64
}

// NewNode builds the HTTP front of one shard.
func NewNode(shard *LocalShard, opts NodeOptions) *Node {
	n := &Node{shard: shard, maxB: opts.MaxBodyBytes}
	if n.maxB <= 0 {
		n.maxB = DefaultMaxBodyBytes
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathIngest, n.handleIngest)
	mux.HandleFunc("POST "+pathDeliver, n.handleDeliver)
	mux.HandleFunc("POST "+pathDeliverBatch, n.handleDeliverBatch)
	mux.HandleFunc("POST "+pathPartials, n.handlePartials)
	mux.HandleFunc("POST "+pathCoverage, n.handleCoverage)
	mux.HandleFunc("GET "+pathExport, n.handleExport)
	mux.HandleFunc("GET "+pathExportSnap, n.handleExportSnap)
	mux.HandleFunc("POST "+pathDeliverSnap, n.handleDeliverSnap)
	mux.HandleFunc("GET "+pathHealth, n.handleHealth)
	mux.HandleFunc("GET /healthz", n.handleHealth)
	n.mux = mux
	return n
}

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// IngestStatus maps an ingest failure onto the HTTP status the public
// and internal ingest endpoints share: the caller's malformed records
// are a 400, size-limit violations (request body bound, NDJSON line
// bound, binary frame bound) a 413, everything else a 500. The size
// checks run first: an oversized input also wraps live.ErrBadInput, and
// 413 is the more precise verdict.
func IngestStatus(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe), errors.Is(err, bufio.ErrTooLong), errors.Is(err, tweet.ErrFrameTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, live.ErrBadInput):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, n.maxB)
	var count int
	var err error
	if r.Header.Get("Content-Type") == tweet.BatchContentType {
		count, err = ingestBinary(n.shard, body, n.maxB)
	} else {
		count, err = ingestNDJSON(n.shard, body)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("shard ingest: %v (accepted %d records)", err, count), IngestStatus(err))
		return
	}
	h, _ := n.shard.Health()
	writeJSON(w, map[string]any{"ingested": count, "tweets": h.Tweets, "buckets": h.Buckets})
}

// handleDeliver applies one replicated slot frame. Delivery is
// synchronous: a 200 means the frame is durable (and deduplicated) on
// this member, which is what lets the coordinator ack its spool.
func (n *Node) handleDeliver(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sender := q.Get("sender")
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("shard deliver: bad seq: %v", err), http.StatusBadRequest)
		return
	}
	slot, err := strconv.Atoi(q.Get("slot"))
	if err != nil {
		http.Error(w, fmt.Sprintf("shard deliver: bad slot: %v", err), http.StatusBadRequest)
		return
	}
	frame, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.maxB))
	if err != nil {
		http.Error(w, fmt.Sprintf("shard deliver: read frame: %v", err), IngestStatus(err))
		return
	}
	if err := n.shard.Deliver(sender, seq, slot, frame); err != nil {
		http.Error(w, fmt.Sprintf("shard deliver: %v", err), IngestStatus(err))
		return
	}
	writeJSON(w, map[string]any{"applied": true})
}

// appendDeliveries envelopes a drain's frames for the wire: per frame a
// 16-byte little-endian header (seq u64, slot u32, frame length u32)
// followed by the frame bytes, concatenated. The frames themselves are
// the CRC'd binary batch codec, never re-encoded.
func appendDeliveries(dst []byte, ds []Delivery) []byte {
	for _, d := range ds {
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[0:], d.Seq)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(d.Slot))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(len(d.Frame)))
		dst = append(dst, hdr[:]...)
		dst = append(dst, d.Frame...)
	}
	return dst
}

// decodeDeliveries parses an appendDeliveries envelope.
func decodeDeliveries(p []byte) ([]Delivery, error) {
	var ds []Delivery
	for len(p) > 0 {
		if len(p) < 16 {
			return nil, fmt.Errorf("truncated delivery header (%d bytes)", len(p))
		}
		seq := binary.LittleEndian.Uint64(p[0:])
		slot := int(int32(binary.LittleEndian.Uint32(p[8:])))
		flen := int(binary.LittleEndian.Uint32(p[12:]))
		p = p[16:]
		if flen > len(p) {
			return nil, fmt.Errorf("truncated delivery frame (want %d, have %d bytes)", flen, len(p))
		}
		ds = append(ds, Delivery{Seq: seq, Slot: slot, Frame: p[:flen:flen]})
		p = p[flen:]
	}
	return ds, nil
}

// handleDeliverBatch applies several replicated frames from one sender
// in a single durable commit — the lane's whole-drain fast path. Like
// handleDeliver, a 200 means every frame is durable (or deduplicated).
func (n *Node) handleDeliverBatch(w http.ResponseWriter, r *http.Request) {
	sender := r.URL.Query().Get("sender")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.maxB))
	if err != nil {
		http.Error(w, fmt.Sprintf("shard deliver-batch: read body: %v", err), IngestStatus(err))
		return
	}
	ds, err := decodeDeliveries(body)
	if err != nil {
		http.Error(w, fmt.Sprintf("shard deliver-batch: %v", err), http.StatusBadRequest)
		return
	}
	if err := n.shard.DeliverBatch(sender, ds); err != nil {
		http.Error(w, fmt.Sprintf("shard deliver-batch: %v", err), IngestStatus(err))
		return
	}
	writeJSON(w, map[string]any{"applied": true, "frames": len(ds)})
}

// handleExportSnap streams one slot's ring as length-prefixed snapshot
// blobs — the handoff source endpoint for a shape-matched receiver.
func (n *Node) handleExportSnap(w http.ResponseWriter, r *http.Request) {
	slot, err := strconv.Atoi(r.URL.Query().Get("slot"))
	if err != nil {
		http.Error(w, fmt.Sprintf("shard export-snap: bad slot: %v", err), http.StatusBadRequest)
		return
	}
	wrote := false
	err = n.shard.ExportSnap(slot, func(blob []byte) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/octet-stream")
			wrote = true
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(blob)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(blob)
		return err
	})
	if err != nil {
		if !wrote {
			http.Error(w, fmt.Sprintf("shard export-snap: %v", err), http.StatusBadRequest)
			return
		}
		// Mid-stream failure: abort so the client sees a decode error
		// rather than a silently truncated stream.
		panic(http.ErrAbortHandler)
	}
	if !wrote {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
}

// handleDeliverSnap applies one handoff snapshot blob with deliver
// semantics: a 200 means durable and merged (or deduplicated); a blob
// failing validation answers 400 — permanent on the client side.
func (n *Node) handleDeliverSnap(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sender := q.Get("sender")
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("shard deliver-snap: bad seq: %v", err), http.StatusBadRequest)
		return
	}
	slot, err := strconv.Atoi(q.Get("slot"))
	if err != nil {
		http.Error(w, fmt.Sprintf("shard deliver-snap: bad slot: %v", err), http.StatusBadRequest)
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.maxB))
	if err != nil {
		http.Error(w, fmt.Sprintf("shard deliver-snap: read blob: %v", err), IngestStatus(err))
		return
	}
	if err := n.shard.DeliverSnap(sender, seq, slot, blob); err != nil {
		http.Error(w, fmt.Sprintf("shard deliver-snap: %v", err), IngestStatus(err))
		return
	}
	writeJSON(w, map[string]any{"applied": true})
}

// ingestNDJSON drains an NDJSON stream into a shard in ring-sized
// batches and flushes at the end, through the shared live.DrainNDJSON
// loop — one counting and error contract across every ingest front. A
// record is counted only once its batch delivered, so the "accepted"
// count a failure reports never includes records a failed delivery
// dropped (clients resume from it).
func ingestNDJSON(s Shard, r io.Reader) (int, error) {
	const chunk = 1 << 13
	batch := &tweet.Batch{}
	batch.Grow(chunk)
	delivered := 0
	deliver := func() error {
		n := batch.Len()
		if n == 0 {
			return nil
		}
		if err := s.Ingest(batch); err != nil {
			return err
		}
		batch.Reset()
		delivered += n
		return nil
	}
	add := func(t tweet.Tweet) error {
		batch.Append(t)
		if batch.Len() >= chunk {
			return deliver()
		}
		return nil
	}
	flush := func() error {
		if err := deliver(); err != nil {
			return err
		}
		return s.Flush()
	}
	if _, err := live.DrainNDJSON(r, add, flush); err != nil {
		return delivered, err
	}
	return delivered, nil
}

// ingestBinary drains a binary batch stream into a shard frame by frame
// and flushes at the end — the pre-encoded columns of every frame pass
// straight through to the shard with no re-encoding. Counting matches
// ingestNDJSON: a record counts only once its frame delivered.
func ingestBinary(s Shard, r io.Reader, maxFrame int64) (int, error) {
	delivered := 0
	add := func(b *tweet.Batch) error {
		n := b.Len()
		if err := s.Ingest(b); err != nil {
			return err
		}
		delivered += n
		return nil
	}
	if _, err := live.DrainBinary(r, maxFrame, add, s.Flush); err != nil {
		return delivered, err
	}
	return delivered, nil
}

// slotRequest is the JSON body of the partials and coverage endpoints.
type slotRequest struct {
	Request core.Request `json:"request"`
	Slots   []int        `json:"slots"`
}

// decodeSlotRequest parses the JSON body shared by the partials and
// coverage endpoints.
func (n *Node) decodeSlotRequest(w http.ResponseWriter, r *http.Request) (slotRequest, bool) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var req slotRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("shard: bad request body: %v", err), http.StatusBadRequest)
		return slotRequest{}, false
	}
	return req, true
}

// foldStatus maps a fold/coverage failure onto its wire status.
func foldStatus(err error) int {
	switch {
	case errors.Is(err, live.ErrNotCovered):
		return http.StatusUnprocessableEntity
	case errors.Is(err, live.ErrEvicted):
		return http.StatusGone
	}
	return http.StatusBadRequest
}

// traceCtx lifts the propagated obs.TraceHeader into the request
// context (so shard folds record against the coordinator's trace) and
// echoes it on the response for end-to-end correlation.
func traceCtx(w http.ResponseWriter, r *http.Request) (context.Context, string) {
	id := r.Header.Get(obs.TraceHeader)
	ctx := r.Context()
	if id != "" {
		ctx = obs.WithTrace(ctx, obs.NewTrace(id))
		w.Header().Set(obs.TraceHeader, id)
	}
	return ctx, id
}

// traceSuffix tags an error message with the trace it belongs to.
func traceSuffix(id string) string {
	if id == "" {
		return ""
	}
	return " (trace " + id + ")"
}

func (n *Node) handlePartials(w http.ResponseWriter, r *http.Request) {
	ctx, tid := traceCtx(w, r)
	req, ok := n.decodeSlotRequest(w, r)
	if !ok {
		return
	}
	ps, err := n.shard.Partials(ctx, req.Request, req.Slots)
	if err != nil {
		http.Error(w, fmt.Sprintf("shard partials: %v%s", err, traceSuffix(tid)), foldStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodePartials(ps))
}

func (n *Node) handleCoverage(w http.ResponseWriter, r *http.Request) {
	ctx, tid := traceCtx(w, r)
	req, ok := n.decodeSlotRequest(w, r)
	if !ok {
		return
	}
	key, err := n.shard.Coverage(ctx, req.Request, req.Slots)
	if err != nil {
		http.Error(w, fmt.Sprintf("shard coverage: %v%s", err, traceSuffix(tid)), foldStatus(err))
		return
	}
	writeJSON(w, map[string]string{"coverage": key})
}

// handleExport streams one slot's canonical substream as consecutive
// binary batch frames — the handoff source endpoint.
func (n *Node) handleExport(w http.ResponseWriter, r *http.Request) {
	slot, err := strconv.Atoi(r.URL.Query().Get("slot"))
	if err != nil {
		http.Error(w, fmt.Sprintf("shard export: bad slot: %v", err), http.StatusBadRequest)
		return
	}
	wrote := false
	err = n.shard.Export(slot, func(b *tweet.Batch) error {
		frame, err := tweet.AppendFrame(nil, b)
		if err != nil {
			return err
		}
		if !wrote {
			w.Header().Set("Content-Type", tweet.BatchContentType)
			wrote = true
		}
		_, err = w.Write(frame)
		return err
	})
	if err != nil {
		if !wrote {
			http.Error(w, fmt.Sprintf("shard export: %v", err), http.StatusBadRequest)
			return
		}
		// Mid-stream failure: abort so the client sees a decode error
		// rather than a silently truncated stream.
		panic(http.ErrAbortHandler)
	}
	if !wrote {
		w.Header().Set("Content-Type", tweet.BatchContentType)
	}
}

func (n *Node) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h, _ := n.shard.Health()
	writeJSON(w, map[string]any{"status": "ok", "shard": h})
}

// HTTPShard talks to a remote Node. It implements Shard, translating
// the wire statuses back into the errors LocalShard reports — sentinel
// fold errors stay sentinels, transport failures and 5xx wrap
// ErrUnavailable, and a 4xx delivery rejection wraps errPermanent — so
// the coordinator's failover and retry behaviour is
// transport-independent.
type HTTPShard struct {
	base string
	hc   *http.Client // folds/exports: generous timeout, slow ≠ hung
	dc   *http.Client // deliveries: short timeout so retries engage fast
}

// NewHTTPShard builds a client for the shard node at base (scheme://host
// [:port]); hc nil selects a client with a 120 s overall timeout (fold
// requests over large windows are slow, not hung). Deliveries use a
// separate 30 s client regardless: a hung delivery must fail fast so
// the lane's backoff-and-retry takes over.
func NewHTTPShard(base string, hc *http.Client) *HTTPShard {
	if hc == nil {
		hc = &http.Client{Timeout: 120 * time.Second}
	}
	return &HTTPShard{
		base: strings.TrimRight(base, "/"),
		hc:   hc,
		dc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Base returns the shard node's base URL.
func (s *HTTPShard) Base() string { return s.base }

// ScrapeMetrics implements MetricsScraper: it fetches the member's raw
// /metrics exposition for federation. The delivery client's short
// timeout applies — a federated scrape must fail fast and render the
// member down rather than stall the whole /metrics/cluster response.
func (s *HTTPShard) ScrapeMetrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.dc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: shard %s metrics: %v", ErrUnavailable, s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, s.statusError("metrics", resp)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// Ingest implements Shard: the batch travels as one binary frame POST —
// the columns are framed directly, never re-encoded as text — flushed
// server-side on arrival.
func (s *HTTPShard) Ingest(b *tweet.Batch) error {
	frame, err := tweet.AppendFrame(nil, b)
	if err != nil {
		return fmt.Errorf("%w: %w", live.ErrBadInput, err)
	}
	resp, err := s.hc.Post(s.base+pathIngest, tweet.BatchContentType, bytes.NewReader(frame))
	if err != nil {
		return fmt.Errorf("%w: shard %s ingest: %v", ErrUnavailable, s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s.statusError("ingest", resp)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Flush implements Shard; HTTP ingests flush per request.
func (s *HTTPShard) Flush() error { return nil }

// Deliver implements Shard: the frame POSTs with its identity in the
// query string. A transport failure or 5xx is retriable
// (ErrUnavailable — the record stays spooled); any other rejection is
// permanent (errPermanent — the lane drops and counts it).
func (s *HTTPShard) Deliver(sender string, seq uint64, slot int, frame []byte) error {
	q := url.Values{}
	q.Set("sender", sender)
	q.Set("seq", strconv.FormatUint(seq, 10))
	q.Set("slot", strconv.Itoa(slot))
	resp, err := s.dc.Post(s.base+pathDeliver+"?"+q.Encode(), tweet.BatchContentType, bytes.NewReader(frame))
	if err != nil {
		return fmt.Errorf("%w: shard %s deliver: %v", ErrUnavailable, s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	detail := strings.TrimSpace(string(msg))
	if resp.StatusCode >= 500 {
		return fmt.Errorf("%w: shard %s deliver: http %d: %s", ErrUnavailable, s.base, resp.StatusCode, detail)
	}
	return fmt.Errorf("%w: shard %s deliver: http %d: %s", errPermanent, s.base, resp.StatusCode, detail)
}

// DeliverBatch implements BatchDeliverer: the drain's frames travel in
// one enveloped POST, committed server-side as a single durable batch.
// Status translation matches Deliver.
func (s *HTTPShard) DeliverBatch(sender string, ds []Delivery) error {
	q := url.Values{}
	q.Set("sender", sender)
	body := appendDeliveries(nil, ds)
	resp, err := s.dc.Post(s.base+pathDeliverBatch+"?"+q.Encode(), "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: shard %s deliver-batch: %v", ErrUnavailable, s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	detail := strings.TrimSpace(string(msg))
	if resp.StatusCode >= 500 {
		return fmt.Errorf("%w: shard %s deliver-batch: http %d: %s", ErrUnavailable, s.base, resp.StatusCode, detail)
	}
	return fmt.Errorf("%w: shard %s deliver-batch: http %d: %s", errPermanent, s.base, resp.StatusCode, detail)
}

// ExportSnap implements SnapshotExporter over the wire: length-prefixed
// snapshot blobs stream straight into fn.
func (s *HTTPShard) ExportSnap(slot int, fn func(blob []byte) error) error {
	resp, err := s.hc.Get(s.base + pathExportSnap + "?slot=" + strconv.Itoa(slot))
	if err != nil {
		return fmt.Errorf("%w: shard %s export-snap: %v", ErrUnavailable, s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s.statusError("export-snap", resp)
	}
	br := bufio.NewReader(resp.Body)
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("cluster: shard %s export-snap: %w", s.base, err)
		}
		blob := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(br, blob); err != nil {
			return fmt.Errorf("cluster: shard %s export-snap: %w", s.base, err)
		}
		if err := fn(blob); err != nil {
			return err
		}
	}
}

// DeliverSnap implements SnapshotReceiver over the wire; status
// translation matches Deliver, so a validation rejection (400) is
// permanent and a transport failure or 5xx stays retriable.
func (s *HTTPShard) DeliverSnap(sender string, seq uint64, slot int, blob []byte) error {
	q := url.Values{}
	q.Set("sender", sender)
	q.Set("seq", strconv.FormatUint(seq, 10))
	q.Set("slot", strconv.Itoa(slot))
	resp, err := s.dc.Post(s.base+pathDeliverSnap+"?"+q.Encode(), "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("%w: shard %s deliver-snap: %v", ErrUnavailable, s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	detail := strings.TrimSpace(string(msg))
	if resp.StatusCode >= 500 {
		return fmt.Errorf("%w: shard %s deliver-snap: http %d: %s", ErrUnavailable, s.base, resp.StatusCode, detail)
	}
	return fmt.Errorf("%w: shard %s deliver-snap: http %d: %s", errPermanent, s.base, resp.StatusCode, detail)
}

// post sends a JSON slot request and returns the successful response.
// The context's trace ID (if any) travels in the obs.TraceHeader header
// so the remote node's logs and errors correlate with the
// coordinator's trace.
func (s *HTTPShard) post(ctx context.Context, path string, req core.Request, slots []int) (*http.Response, error) {
	body, err := json.Marshal(slotRequest{Request: req, Slots: slots})
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := obs.TraceID(ctx); id != "" {
		hreq.Header.Set(obs.TraceHeader, id)
	}
	resp, err := s.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("%w: shard %s %s: %v", ErrUnavailable, s.base, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, s.statusError(path, resp)
	}
	return resp, nil
}

// statusError reconstructs the sentinel for a non-200 response: fold
// sentinels by status, 5xx as ErrUnavailable (the node is up enough to
// answer but failing — its replicas should serve), anything else as a
// plain error.
func (s *HTTPShard) statusError(what string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	detail := strings.TrimSpace(string(msg))
	switch {
	case resp.StatusCode == http.StatusUnprocessableEntity:
		return fmt.Errorf("%w (shard %s: %s)", live.ErrNotCovered, s.base, detail)
	case resp.StatusCode == http.StatusGone:
		return fmt.Errorf("%w (shard %s: %s)", live.ErrEvicted, s.base, detail)
	case resp.StatusCode >= 500:
		return fmt.Errorf("%w: shard %s %s: http %d: %s", ErrUnavailable, s.base, what, resp.StatusCode, detail)
	}
	return fmt.Errorf("cluster: shard %s %s: http %d: %s", s.base, what, resp.StatusCode, detail)
}

// Partials implements Shard.
func (s *HTTPShard) Partials(ctx context.Context, req core.Request, slots []int) ([]*live.ShardPartial, error) {
	resp, err := s.post(ctx, pathPartials, req, slots)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: shard %s partials: %v", ErrUnavailable, s.base, err)
	}
	return DecodePartials(data)
}

// Coverage implements Shard.
func (s *HTTPShard) Coverage(ctx context.Context, req core.Request, slots []int) (string, error) {
	resp, err := s.post(ctx, pathCoverage, req, slots)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Coverage string `json:"coverage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("%w: shard %s coverage: %v", ErrUnavailable, s.base, err)
	}
	return out.Coverage, nil
}

// Export implements Shard: the slot's frames stream straight into fn.
func (s *HTTPShard) Export(slot int, fn func(*tweet.Batch) error) error {
	resp, err := s.hc.Get(s.base + pathExport + "?slot=" + strconv.Itoa(slot))
	if err != nil {
		return fmt.Errorf("%w: shard %s export: %v", ErrUnavailable, s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s.statusError("export", resp)
	}
	if _, err := live.DrainBinary(resp.Body, 0, fn, func() error { return nil }); err != nil {
		return fmt.Errorf("cluster: shard %s export: %w", s.base, err)
	}
	return nil
}

// Health implements Shard.
func (s *HTTPShard) Health() (ShardHealth, error) {
	resp, err := s.hc.Get(s.base + pathHealth)
	if err != nil {
		return ShardHealth{}, fmt.Errorf("%w: shard %s health: %v", ErrUnavailable, s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ShardHealth{}, s.statusError("health", resp)
	}
	var out struct {
		Shard ShardHealth `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return ShardHealth{}, fmt.Errorf("%w: shard %s health: %v", ErrUnavailable, s.base, err)
	}
	return out.Shard, nil
}
