package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/tweet"
)

// The internal shard API. Requests travel as JSON-encoded core.Request
// bodies (times RFC 3339, floats by shortest representation — exact on
// round-trip); partials come back in the binary wire codec. Error status
// codes carry the sentinel semantics across the wire so a coordinator
// behaves identically over LocalShard and HTTPShard:
//
//	POST /shard/v1/ingest    NDJSON batch → {"ingested": n}
//	POST /shard/v1/partial   core.Request → binary ShardPartial
//	POST /shard/v1/coverage  core.Request → {"coverage": key}
//	GET  /shard/v1/health    ShardHealth
//	GET  /healthz            liveness (boot-wait probes)
//
//	400 caller's request/records   422 live.ErrNotCovered
//	410 live.ErrEvicted            413 body or line too large
const (
	pathIngest   = "/shard/v1/ingest"
	pathPartial  = "/shard/v1/partial"
	pathCoverage = "/shard/v1/coverage"
	pathHealth   = "/shard/v1/health"
)

// NodeOptions configure a shard node server.
type NodeOptions struct {
	// MaxBodyBytes bounds request bodies; zero means 64 MiB. Oversized
	// requests answer 413 (like the public /v1/ingest).
	MaxBodyBytes int64
}

// DefaultMaxBodyBytes is the request-body bound services apply when the
// operator configures none.
const DefaultMaxBodyBytes int64 = 64 << 20

// Node serves one LocalShard over the internal shard API.
type Node struct {
	shard *LocalShard
	mux   *http.ServeMux
	maxB  int64
}

// NewNode builds the HTTP front of one shard.
func NewNode(shard *LocalShard, opts NodeOptions) *Node {
	n := &Node{shard: shard, maxB: opts.MaxBodyBytes}
	if n.maxB <= 0 {
		n.maxB = DefaultMaxBodyBytes
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathIngest, n.handleIngest)
	mux.HandleFunc("POST "+pathPartial, n.handlePartial)
	mux.HandleFunc("POST "+pathCoverage, n.handleCoverage)
	mux.HandleFunc("GET "+pathHealth, n.handleHealth)
	mux.HandleFunc("GET /healthz", n.handleHealth)
	n.mux = mux
	return n
}

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// IngestStatus maps an ingest failure onto the HTTP status the public
// and internal ingest endpoints share: the caller's malformed records
// are a 400, size-limit violations (request body bound, NDJSON line
// bound, binary frame bound) a 413, everything else a 500. The size
// checks run first: an oversized input also wraps live.ErrBadInput, and
// 413 is the more precise verdict.
func IngestStatus(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe), errors.Is(err, bufio.ErrTooLong), errors.Is(err, tweet.ErrFrameTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, live.ErrBadInput):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, n.maxB)
	var count int
	var err error
	if r.Header.Get("Content-Type") == tweet.BatchContentType {
		count, err = ingestBinary(n.shard, body, n.maxB)
	} else {
		count, err = ingestNDJSON(n.shard, body)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("shard ingest: %v (accepted %d records)", err, count), IngestStatus(err))
		return
	}
	h, _ := n.shard.Health()
	writeJSON(w, map[string]any{"ingested": count, "tweets": h.Tweets, "buckets": h.Buckets})
}

// ingestNDJSON drains an NDJSON stream into a shard in ring-sized
// batches and flushes at the end, through the shared live.DrainNDJSON
// loop — one counting and error contract across every ingest front. A
// record is counted only once its batch delivered, so the "accepted"
// count a failure reports never includes records a failed delivery
// dropped (clients resume from it).
func ingestNDJSON(s Shard, r io.Reader) (int, error) {
	const chunk = 1 << 13
	batch := &tweet.Batch{}
	batch.Grow(chunk)
	delivered := 0
	deliver := func() error {
		n := batch.Len()
		if n == 0 {
			return nil
		}
		if err := s.Ingest(batch); err != nil {
			return err
		}
		batch.Reset()
		delivered += n
		return nil
	}
	add := func(t tweet.Tweet) error {
		batch.Append(t)
		if batch.Len() >= chunk {
			return deliver()
		}
		return nil
	}
	flush := func() error {
		if err := deliver(); err != nil {
			return err
		}
		return s.Flush()
	}
	if _, err := live.DrainNDJSON(r, add, flush); err != nil {
		return delivered, err
	}
	return delivered, nil
}

// ingestBinary drains a binary batch stream into a shard frame by frame
// and flushes at the end — the pre-encoded columns of every frame pass
// straight through to the shard with no re-encoding. Counting matches
// ingestNDJSON: a record counts only once its frame delivered.
func ingestBinary(s Shard, r io.Reader, maxFrame int64) (int, error) {
	delivered := 0
	add := func(b *tweet.Batch) error {
		n := b.Len()
		if err := s.Ingest(b); err != nil {
			return err
		}
		delivered += n
		return nil
	}
	if _, err := live.DrainBinary(r, maxFrame, add, s.Flush); err != nil {
		return delivered, err
	}
	return delivered, nil
}

// decodeRequest parses the JSON core.Request body shared by the partial
// and coverage endpoints.
func (n *Node) decodeRequest(w http.ResponseWriter, r *http.Request) (core.Request, bool) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var req core.Request
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("shard: bad request body: %v", err), http.StatusBadRequest)
		return core.Request{}, false
	}
	return req, true
}

// foldStatus maps a fold/coverage failure onto its wire status.
func foldStatus(err error) int {
	switch {
	case errors.Is(err, live.ErrNotCovered):
		return http.StatusUnprocessableEntity
	case errors.Is(err, live.ErrEvicted):
		return http.StatusGone
	}
	return http.StatusBadRequest
}

func (n *Node) handlePartial(w http.ResponseWriter, r *http.Request) {
	req, ok := n.decodeRequest(w, r)
	if !ok {
		return
	}
	p, err := n.shard.Partial(req)
	if err != nil {
		http.Error(w, fmt.Sprintf("shard partial: %v", err), foldStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodePartial(p))
}

func (n *Node) handleCoverage(w http.ResponseWriter, r *http.Request) {
	req, ok := n.decodeRequest(w, r)
	if !ok {
		return
	}
	key, err := n.shard.Coverage(req)
	if err != nil {
		http.Error(w, fmt.Sprintf("shard coverage: %v", err), foldStatus(err))
		return
	}
	writeJSON(w, map[string]string{"coverage": key})
}

func (n *Node) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h, _ := n.shard.Health()
	writeJSON(w, map[string]any{"status": "ok", "shard": h})
}

// HTTPShard talks to a remote Node. It implements Shard, translating the
// wire statuses back into the sentinel errors LocalShard reports, so the
// coordinator's behaviour is transport-independent.
type HTTPShard struct {
	base string
	hc   *http.Client
}

// NewHTTPShard builds a client for the shard node at base (scheme://host
// [:port]); hc nil selects a client with a 120 s overall timeout (fold
// requests over large windows are slow, not hung).
func NewHTTPShard(base string, hc *http.Client) *HTTPShard {
	if hc == nil {
		hc = &http.Client{Timeout: 120 * time.Second}
	}
	return &HTTPShard{base: strings.TrimRight(base, "/"), hc: hc}
}

// Base returns the shard node's base URL.
func (s *HTTPShard) Base() string { return s.base }

// Ingest implements Shard: the batch travels as one binary frame POST —
// the columns are framed directly, never re-encoded as text — flushed
// server-side on arrival.
func (s *HTTPShard) Ingest(b *tweet.Batch) error {
	frame, err := tweet.AppendFrame(nil, b)
	if err != nil {
		return fmt.Errorf("%w: %w", live.ErrBadInput, err)
	}
	resp, err := s.hc.Post(s.base+pathIngest, tweet.BatchContentType, bytes.NewReader(frame))
	if err != nil {
		return fmt.Errorf("cluster: shard %s ingest: %w", s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s.statusError("ingest", resp)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Flush implements Shard; HTTP ingests flush per request.
func (s *HTTPShard) Flush() error { return nil }

// post sends a JSON core.Request and returns the successful response.
func (s *HTTPShard) post(path string, req core.Request) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := s.hc.Post(s.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s %s: %w", s.base, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, s.statusError(path, resp)
	}
	return resp, nil
}

// statusError reconstructs the sentinel for a non-200 response.
func (s *HTTPShard) statusError(what string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	detail := strings.TrimSpace(string(msg))
	switch resp.StatusCode {
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("%w (shard %s: %s)", live.ErrNotCovered, s.base, detail)
	case http.StatusGone:
		return fmt.Errorf("%w (shard %s: %s)", live.ErrEvicted, s.base, detail)
	}
	return fmt.Errorf("cluster: shard %s %s: http %d: %s", s.base, what, resp.StatusCode, detail)
}

// Partial implements Shard.
func (s *HTTPShard) Partial(req core.Request) (*live.ShardPartial, error) {
	resp, err := s.post(pathPartial, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s partial: %w", s.base, err)
	}
	return DecodePartial(data)
}

// Coverage implements Shard.
func (s *HTTPShard) Coverage(req core.Request) (string, error) {
	resp, err := s.post(pathCoverage, req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Coverage string `json:"coverage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("cluster: shard %s coverage: %w", s.base, err)
	}
	return out.Coverage, nil
}

// Health implements Shard.
func (s *HTTPShard) Health() (ShardHealth, error) {
	resp, err := s.hc.Get(s.base + pathHealth)
	if err != nil {
		return ShardHealth{}, fmt.Errorf("cluster: shard %s health: %w", s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ShardHealth{}, s.statusError("health", resp)
	}
	var out struct {
		Shard ShardHealth `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return ShardHealth{}, fmt.Errorf("cluster: shard %s health: %w", s.base, err)
	}
	return out.Shard, nil
}
