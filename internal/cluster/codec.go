package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/live"
	"geomob/internal/mobility"
)

// The shard partial wire codec: a versioned little-endian binary format
// whose floats are raw IEEE-754 bit patterns, so a decoded partial is
// bit-for-bit the encoded one by construction — the property the §8
// exactness argument needs from the transport (JSON would survive a
// round-trip only by the grace of shortest-representation parsing, and
// not at all for NaN or infinities).
//
// Layout (all integers little-endian, floats as Float64bits):
//
//	u32 magic "GMCP" | u16 version | u8 flags(seen,users,metro)
//	i64 tweets | f64×4 bbox(minLat,minLon,maxLat,maxLon) | i64 first,last
//	u16 nscales | per scale: u8 scale id
//	per scale: u8 hasCounts [u32 len, f64×len]
//	per scale: u8 hasFlows  [u32 n, f64×n×n flows row-major, f64×n stays]
//	if metro:  u32 len, f64×len
//	if users:  u32 count | per user:
//	           i64 id, i64 tweets, f64 sx,sy,sz, i64 cells,
//	           u32 nw, f64×nw waits, u32 nd, f64×nd disps
//	v2 only:   u8 ntiers | per tier: i64 factor, u32 groups, u32 buckets
//	           u32 buckets | u32 full | u32 residual | i64 residualRecords
//
// Flow matrices travel as bare numbers; the decoder re-attaches the area
// lists from its own embedded gazetteer (every node bakes in the same
// one), keeping user-count-independent metadata off the wire.
//
// Version 2 appends the fold-coverage accounting EXPLAIN ANALYZE
// surfaces per shard; a v1 payload still decodes (zero coverage), so a
// coordinator ahead of its members during a rolling upgrade keeps
// answering — only the explain breakdown degrades.
const (
	partialMagic   uint32 = 0x50434d47 // "GMCP" little-endian
	partialVersion uint16 = 2

	flagSeen  byte = 1 << 0
	flagUsers byte = 1 << 1
	flagMetro byte = 1 << 2
)

// EncodePartial renders p in the wire format.
func EncodePartial(p *live.ShardPartial) []byte {
	var w wireWriter
	w.u32(partialMagic)
	w.u16(partialVersion)
	flags := byte(0)
	if p.Seen {
		flags |= flagSeen
	}
	if p.Users != nil {
		flags |= flagUsers
	}
	if p.Metro500 != nil {
		flags |= flagMetro
	}
	w.u8(flags)
	w.i64(p.Tweets)
	w.f64(p.BBox.MinLat)
	w.f64(p.BBox.MinLon)
	w.f64(p.BBox.MaxLat)
	w.f64(p.BBox.MaxLon)
	w.i64(p.FirstTS)
	w.i64(p.LastTS)
	w.u16(uint16(len(p.Scales)))
	for _, sc := range p.Scales {
		w.u8(byte(sc))
	}
	for _, sc := range p.Scales {
		c, ok := p.Counts[sc]
		w.bool(ok)
		if ok {
			w.f64s(c)
		}
	}
	for _, sc := range p.Scales {
		fm := p.Flows[sc]
		w.bool(fm != nil)
		if fm != nil {
			w.u32(uint32(len(fm.Flows)))
			for _, row := range fm.Flows {
				for _, v := range row {
					w.f64(v)
				}
			}
			for _, v := range fm.Stays {
				w.f64(v)
			}
		}
	}
	if p.Metro500 != nil {
		w.f64s(p.Metro500)
	}
	if p.Users != nil {
		w.u32(uint32(len(p.Users)))
		for i := range p.Users {
			u := &p.Users[i]
			w.i64(u.ID)
			w.i64(u.Tweets)
			w.f64(u.SumX)
			w.f64(u.SumY)
			w.f64(u.SumZ)
			w.i64(u.DistinctCells)
			w.f64s(u.Waits)
			w.f64s(u.Disps)
		}
	}
	w.u8(byte(len(p.Coverage.TierFolds)))
	for _, tf := range p.Coverage.TierFolds {
		w.i64(tf.Factor)
		w.u32(uint32(tf.Groups))
		w.u32(uint32(tf.Buckets))
	}
	w.u32(uint32(p.Coverage.Buckets))
	w.u32(uint32(p.Coverage.FullBuckets))
	w.u32(uint32(p.Coverage.ResidualBuckets))
	w.i64(p.Coverage.ResidualRecords)
	return w.buf
}

// DecodePartial parses the wire format back into a ShardPartial,
// re-attaching area metadata from the embedded gazetteer.
func DecodePartial(data []byte) (*live.ShardPartial, error) {
	r := wireReader{buf: data}
	if m := r.u32(); m != partialMagic && r.err == nil {
		return nil, fmt.Errorf("cluster: partial codec: bad magic %#x", m)
	}
	ver := r.u16()
	if ver != 1 && ver != partialVersion && r.err == nil {
		return nil, fmt.Errorf("cluster: partial codec: unsupported version %d", ver)
	}
	flags := r.u8()
	p := &live.ShardPartial{}
	p.Seen = flags&flagSeen != 0
	p.Tweets = r.i64()
	p.BBox = geo.BBox{MinLat: r.f64(), MinLon: r.f64(), MaxLat: r.f64(), MaxLon: r.f64()}
	p.FirstTS = r.i64()
	p.LastTS = r.i64()
	nscales := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if nscales > 16 {
		return nil, fmt.Errorf("cluster: partial codec: implausible scale count %d", nscales)
	}
	gaz := census.Australia()
	if nscales > 0 { // keep nil for scale-free plans so round-trips are exact
		p.Scales = make([]census.Scale, nscales)
	}
	for i := range p.Scales {
		p.Scales[i] = census.Scale(r.u8())
	}
	for _, sc := range p.Scales {
		if r.bool() {
			if p.Counts == nil {
				p.Counts = map[census.Scale][]float64{}
			}
			p.Counts[sc] = r.f64s()
		}
	}
	for _, sc := range p.Scales {
		if !r.bool() {
			continue
		}
		n := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		rs, err := gaz.Regions(sc)
		if err != nil {
			return nil, fmt.Errorf("cluster: partial codec: regions for %s: %w", sc, err)
		}
		if n != len(rs.Areas) {
			return nil, fmt.Errorf("cluster: partial codec: %s flow matrix over %d areas, gazetteer has %d",
				sc, n, len(rs.Areas))
		}
		fm := mobility.NewFlowMatrix(rs.Areas)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				fm.Flows[i][j] = r.f64()
			}
		}
		for i := 0; i < n; i++ {
			fm.Stays[i] = r.f64()
		}
		if p.Flows == nil {
			p.Flows = map[census.Scale]*mobility.FlowMatrix{}
		}
		p.Flows[sc] = fm
	}
	if flags&flagMetro != 0 {
		p.Metro500 = r.f64s()
	}
	if flags&flagUsers != 0 {
		n := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if n > len(data) { // each user costs well over one byte
			return nil, fmt.Errorf("cluster: partial codec: implausible user count %d", n)
		}
		p.Users = make([]live.UserTrajectory, n)
		for i := range p.Users {
			u := &p.Users[i]
			u.ID = r.i64()
			u.Tweets = r.i64()
			u.SumX = r.f64()
			u.SumY = r.f64()
			u.SumZ = r.f64()
			u.DistinctCells = r.i64()
			u.Waits = r.f64s()
			u.Disps = r.f64s()
			if r.err != nil {
				return nil, r.err
			}
		}
	}
	if ver >= 2 {
		ntiers := int(r.u8())
		if r.err != nil {
			return nil, r.err
		}
		if ntiers > 8 {
			return nil, fmt.Errorf("cluster: partial codec: implausible tier count %d", ntiers)
		}
		for i := 0; i < ntiers; i++ {
			p.Coverage.TierFolds = append(p.Coverage.TierFolds, live.TierFold{
				Factor:  r.i64(),
				Groups:  int(r.u32()),
				Buckets: int(r.u32()),
			})
		}
		p.Coverage.Buckets = int(r.u32())
		p.Coverage.FullBuckets = int(r.u32())
		p.Coverage.ResidualBuckets = int(r.u32())
		p.Coverage.ResidualRecords = r.i64()
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("cluster: partial codec: %d trailing bytes", len(r.buf)-r.off)
	}
	return p, nil
}

// EncodePartials renders a slot-ordered partial list: u32 count, then
// each partial length-prefixed (u32) in the single-partial format. The
// nesting keeps the exactness property — every float still travels as
// its raw bit pattern.
func EncodePartials(ps []*live.ShardPartial) []byte {
	var w wireWriter
	w.u32(uint32(len(ps)))
	for _, p := range ps {
		enc := EncodePartial(p)
		w.u32(uint32(len(enc)))
		w.buf = append(w.buf, enc...)
	}
	return w.buf
}

// DecodePartials parses an EncodePartials payload.
func DecodePartials(data []byte) ([]*live.ShardPartial, error) {
	r := wireReader{buf: data}
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n > len(data) { // each partial costs well over one byte
		return nil, fmt.Errorf("cluster: partial codec: implausible partial count %d", n)
	}
	out := make([]*live.ShardPartial, 0, n)
	for i := 0; i < n; i++ {
		ln := int(r.u32())
		blob := r.take(ln)
		if r.err != nil {
			return nil, r.err
		}
		p, err := DecodePartial(blob)
		if err != nil {
			return nil, fmt.Errorf("cluster: partial %d of %d: %w", i, n, err)
		}
		out = append(out, p)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("cluster: partial codec: %d trailing bytes", len(r.buf)-r.off)
	}
	return out, nil
}

// wireWriter appends fixed-width little-endian fields to a buffer.
type wireWriter struct{ buf []byte }

func (w *wireWriter) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *wireWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *wireWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) i64(v int64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *wireWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *wireWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// f64s writes a length-prefixed float slice. Nil and empty encode
// identically (length 0) and decode to nil.
func (w *wireWriter) f64s(vs []float64) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

// wireReader consumes the writer's format, latching the first error.
type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("cluster: partial codec: truncated at byte %d (need %d more)", r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *wireReader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *wireReader) bool() bool { return r.u8() != 0 }

func (r *wireReader) f64s() []float64 {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n*8 > len(r.buf)-r.off {
		r.err = fmt.Errorf("cluster: partial codec: float slice of %d exceeds remaining %d bytes", n, len(r.buf)-r.off)
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.f64()
	}
	return vs
}
