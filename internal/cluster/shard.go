package cluster

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"sync"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/ring"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Shard is one cluster member behind a uniform interface: the
// coordinator delivers slot-addressed replicated frames to it and
// scatters slot-set fold requests at it, without knowing whether the
// member lives in-process (LocalShard) or behind the internal HTTP API
// (HTTPShard → Node).
type Shard interface {
	// Deliver applies one replicated batch frame for slot, exactly
	// once: frames whose (sender, seq) fall at or below the shard's
	// durable high-water mark for that sender are acknowledged without
	// re-applying, which makes spool replay and redelivery after an
	// ambiguous failure idempotent. An empty sender disables
	// deduplication. Delivery is synchronous and durable on return.
	Deliver(sender string, seq uint64, slot int, frame []byte) error
	// Ingest absorbs one columnar batch directly (no replication, no
	// dedup): rows are routed to their placement slots internally. The
	// batch is only read; ownership stays with the caller.
	Ingest(b *tweet.Batch) error
	// Flush forces any buffered ingest out, so a subsequent Partials
	// observes everything ingested so far.
	Flush() error
	// Partials folds the shard's materialised bucket partials covering
	// req's window for each requested placement slot, in slot order.
	Partials(req core.Request, slots []int) ([]*live.ShardPartial, error)
	// Coverage fingerprints the shard's bucket coverage of req's window
	// over the requested slots — the coordinator's cache key component
	// that moves exactly when an ingest lands in a covered bucket.
	Coverage(req core.Request, slots []int) (string, error)
	// Export streams slot's full substream in canonical (user, time)
	// order as bounded batches — the handoff source when the slot moves
	// to another member.
	Export(slot int, fn func(*tweet.Batch) error) error
	// Health reports the shard's liveness counters; an error marks the
	// shard unreachable (degraded in the coordinator's /healthz).
	Health() (ShardHealth, error)
}

// ShardHealth is one shard's liveness report.
type ShardHealth struct {
	// Tweets is the durable record count (0 without a store); Ingested
	// counts records accepted into the bucket rings since boot.
	Tweets   int64 `json:"tweets"`
	Ingested int64 `json:"ingested"`
	// Buckets and Builds describe the rings: live buckets and partial
	// materialisations performed, summed over the shard's slots.
	Buckets int   `json:"buckets"`
	Builds  int64 `json:"builds"`
	// Scans counts store segment scans — the number the scatter-gather
	// exactness tests pin to zero on warm folds.
	Scans int64 `json:"scans"`
	// Slots counts placement slots holding at least one record here.
	Slots int `json:"slots"`
}

// LocalShard is an in-process cluster member: one live bucket ring per
// placement slot — all stamped from a single shared assignment Shape —
// optionally in lockstep with one durable store. Slot-granular rings
// are what make replicated reads exact: a fold over any subset of
// slots never mixes users from slots another replica serves.
type LocalShard struct {
	shape *live.Shape
	store *tweetdb.Store // nil for a ring-only shard

	mu   sync.Mutex
	aggs [ring.Slots]*live.Aggregator
	// hwm holds the highest applied delivery sequence per sender,
	// persisted in the store manifest's meta table atomically with each
	// applied batch (memory-only without a store).
	hwm map[string]uint64
}

const hwmMetaPrefix = "hwm:"

// NewLocalShard builds a shard over the store (nil for a ring-only
// shard) with the given ring options. When a store is present its
// records are backfilled into the slot rings — one scan at boot, then
// zero forever — and the per-sender delivery high-water marks are
// reloaded from the manifest meta table, so replayed spool frames
// deduplicate across restarts.
func NewLocalShard(store *tweetdb.Store, opts live.Options) (*LocalShard, error) {
	shape, err := live.NewShape(opts)
	if err != nil {
		return nil, err
	}
	s := &LocalShard{shape: shape, store: store, hwm: map[string]uint64{}}
	for k := range s.aggs {
		s.aggs[k] = shape.NewAggregator()
	}
	if store != nil {
		if err := s.backfill(); err != nil {
			return nil, fmt.Errorf("cluster: backfill shard rings: %w", err)
		}
		for key, val := range store.MetaPrefix(hwmMetaPrefix) {
			seq, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: corrupt delivery mark %s=%q: %w", key, val, err)
			}
			s.hwm[key[len(hwmMetaPrefix):]] = seq
		}
	}
	return s, nil
}

// backfill replays the store into the slot rings, routing each record
// by its user's placement slot.
func (s *LocalShard) backfill() error {
	it := s.store.Scan(tweetdb.Query{})
	defer it.Close()
	buf := &tweet.Batch{}
	const chunk = 1 << 14
	for {
		blk, ok := it.NextBlock()
		if !ok {
			break
		}
		for off := 0; off < blk.Len(); off += chunk {
			end := off + chunk
			if end > blk.Len() {
				end = blk.Len()
			}
			buf.Reset()
			blk.AppendTo(buf, off, end)
			if err := s.routeLocked(buf); err != nil {
				return err
			}
		}
	}
	return it.Err()
}

// routeLocked splits one batch by placement slot and ingests each
// piece into its ring. Callers must not require s.mu (boot) or must
// hold it (Ingest).
func (s *LocalShard) routeLocked(b *tweet.Batch) error {
	var parts [ring.Slots]*tweet.Batch
	for i, user := range b.UserID {
		k := ring.SlotOf(user)
		p := parts[k]
		if p == nil {
			p = &tweet.Batch{}
			parts[k] = p
		}
		p.Append(b.Row(i))
	}
	for k, p := range parts {
		if p == nil {
			continue
		}
		if err := s.aggs[k].IngestBatch(p); err != nil {
			return fmt.Errorf("slot %d: %w", k, err)
		}
	}
	return nil
}

// Store exposes the shard's store (nil for ring-only shards).
func (s *LocalShard) Store() *tweetdb.Store { return s.store }

// Shape exposes the shared assignment machinery.
func (s *LocalShard) Shape() *live.Shape { return s.shape }

// SlotAggregator exposes one placement slot's bucket ring (tests and
// handoff plumbing).
func (s *LocalShard) SlotAggregator(slot int) *live.Aggregator { return s.aggs[slot] }

// Ingested sums records accepted into the slot rings.
func (s *LocalShard) Ingested() int64 {
	var n int64
	for _, a := range s.aggs {
		n += a.Ingested()
	}
	return n
}

// Builds sums partial materialisations over the slot rings.
func (s *LocalShard) Builds() int64 {
	var n int64
	for _, a := range s.aggs {
		n += a.Builds()
	}
	return n
}

// Buckets sums live buckets over the slot rings.
func (s *LocalShard) Buckets() int {
	n := 0
	for _, a := range s.aggs {
		n += a.Buckets()
	}
	return n
}

// Deliver implements Shard. The frame's batch is appended to the store
// together with the sender's advanced high-water mark in one atomic
// manifest commit, then routed into the slot's ring; a crash between
// the two is healed by the boot backfill. Duplicate (sender, seq)
// deliveries return success without re-applying.
func (s *LocalShard) Deliver(sender string, seq uint64, slot int, frame []byte) error {
	if slot < 0 || slot >= ring.Slots {
		return fmt.Errorf("%w: slot %d out of range", live.ErrBadInput, slot)
	}
	batch := &tweet.Batch{}
	if err := tweet.NewBatchReader(bytes.NewReader(frame), int64(len(frame))+1).Read(batch); err != nil {
		return fmt.Errorf("%w: decode frame: %w", live.ErrBadInput, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sender != "" && seq <= s.hwm[sender] {
		return nil
	}
	if s.store != nil {
		var meta map[string]string
		if sender != "" {
			meta = map[string]string{hwmMetaPrefix + sender: strconv.FormatUint(seq, 10)}
		}
		if err := s.store.AppendBatchMeta(batch, meta); err != nil {
			return err
		}
	}
	if err := s.aggs[slot].IngestBatch(batch); err != nil {
		return err
	}
	if sender != "" {
		s.hwm[sender] = seq
	}
	return nil
}

// Ingest implements Shard: a direct, non-replicated ingest used by the
// node's public ingest endpoint and single-process setups. Rows are
// routed to their placement slots; with a store the batch lands
// durably first.
func (s *LocalShard) Ingest(b *tweet.Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		if err := s.store.AppendBatch(b); err != nil {
			return err
		}
	}
	return s.routeLocked(b)
}

// Flush implements Shard; LocalShard applies synchronously.
func (s *LocalShard) Flush() error { return nil }

// Partials implements Shard.
func (s *LocalShard) Partials(req core.Request, slots []int) ([]*live.ShardPartial, error) {
	out := make([]*live.ShardPartial, 0, len(slots))
	for _, k := range slots {
		if k < 0 || k >= ring.Slots {
			return nil, fmt.Errorf("cluster: slot %d out of range", k)
		}
		p, err := s.aggs[k].FoldPartial(req)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Coverage implements Shard: a fingerprint over the per-slot coverage
// keys, in slot order, so it moves exactly when any requested slot's
// covered buckets change.
func (s *LocalShard) Coverage(req core.Request, slots []int) (string, error) {
	var buf bytes.Buffer
	for _, k := range slots {
		if k < 0 || k >= ring.Slots {
			return "", fmt.Errorf("cluster: slot %d out of range", k)
		}
		key, err := s.aggs[k].CoverageKeyRequest(req)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&buf, "%d=%s;", k, key)
	}
	return buf.String(), nil
}

// exportChunk bounds one handoff export batch.
const exportChunk = 4096

// Export implements Shard: the slot's complete substream in canonical
// (user, time) order, chunked. The canonical order makes a handoff
// stream deterministic, so re-running an interrupted handoff
// regenerates identical frames and the receiver's (sender, seq) dedup
// resumes cleanly.
func (s *LocalShard) Export(slot int, fn func(*tweet.Batch) error) error {
	if slot < 0 || slot >= ring.Slots {
		return fmt.Errorf("cluster: slot %d out of range", slot)
	}
	rows, err := s.aggs[slot].WindowTweets(math.MinInt64, math.MaxInt64)
	if err != nil {
		return err
	}
	for off := 0; off < len(rows); off += exportChunk {
		end := off + exportChunk
		if end > len(rows) {
			end = len(rows)
		}
		if err := fn(tweet.BatchOf(rows[off:end])); err != nil {
			return err
		}
	}
	return nil
}

// Health implements Shard.
func (s *LocalShard) Health() (ShardHealth, error) {
	h := ShardHealth{}
	for _, a := range s.aggs {
		h.Ingested += a.Ingested()
		h.Builds += a.Builds()
		h.Buckets += a.Buckets()
		if a.Ingested() > 0 {
			h.Slots++
		}
	}
	if s.store != nil {
		h.Tweets = s.store.Count()
		h.Scans = s.store.ScanCount()
	}
	return h, nil
}
