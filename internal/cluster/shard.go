package cluster

import (
	"fmt"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Shard is one user partition of the cluster behind a uniform interface:
// the coordinator routes ingest to it and scatters fold requests at it
// without knowing whether the partition lives in-process (LocalShard) or
// behind the internal HTTP API (HTTPShard → Node).
type Shard interface {
	// Ingest absorbs one columnar batch of records belonging to this
	// partition: durably appended when the shard has a store, and routed
	// through the assignment hot path into the shard's bucket ring. The
	// batch is only read; ownership stays with the caller. Batches may be
	// buffered; Flush forces them out.
	Ingest(b *tweet.Batch) error
	// Flush forces any buffered ingest out to the store and ring, so a
	// subsequent Partial observes everything ingested so far.
	Flush() error
	// Partial folds the shard's materialised bucket partials covering
	// req's window into the scatter-gather unit.
	Partial(req core.Request) (*live.ShardPartial, error)
	// Coverage fingerprints the shard's bucket coverage of req's window
	// (live.Aggregator.CoverageKey): the coordinator's cache key
	// component that moves exactly when an ingest lands in a covered
	// bucket.
	Coverage(req core.Request) (string, error)
	// Health reports the shard's liveness counters; an error marks the
	// shard unreachable (degraded in the coordinator's /healthz).
	Health() (ShardHealth, error)
}

// ShardHealth is one shard's liveness report.
type ShardHealth struct {
	// Tweets is the durable record count (0 without a store); Ingested
	// counts records accepted into the ring since boot.
	Tweets   int64 `json:"tweets"`
	Ingested int64 `json:"ingested"`
	// Buckets and Builds describe the ring: live buckets and partial
	// materialisations performed.
	Buckets int   `json:"buckets"`
	Builds  int64 `json:"builds"`
	// Scans counts store segment scans — the number the scatter-gather
	// exactness tests pin to zero on warm folds.
	Scans int64 `json:"scans"`
}

// LocalShard is an in-process partition: a live bucket ring, optionally
// in lockstep with a durable store (the -partitions mode of cmd/mobserve
// runs one LocalShard per partition, so a multi-core box gets
// per-partition ingest parallelism without a network hop; a ShardNode
// serves one LocalShard remotely).
type LocalShard struct {
	agg   *live.Aggregator
	store *tweetdb.Store // nil for a ring-only shard
	ing   *live.Ingestor // nil iff store is nil
}

// NewLocalShard builds a shard over the store (nil for a ring-only
// shard) with the given ring options. When a store is present its
// records are backfilled into the ring — one scan at boot, then zero
// forever — and ingest runs through a live.Ingestor so ring and store
// flush in lockstep.
func NewLocalShard(store *tweetdb.Store, opts live.Options) (*LocalShard, error) {
	agg, err := live.NewAggregator(opts)
	if err != nil {
		return nil, err
	}
	s := &LocalShard{agg: agg, store: store}
	if store != nil {
		if _, err := live.Backfill(agg, store); err != nil {
			return nil, fmt.Errorf("cluster: backfill shard ring: %w", err)
		}
		ing, err := live.NewIngestor(store, agg, 0)
		if err != nil {
			return nil, err
		}
		s.ing = ing
	}
	return s, nil
}

// Aggregator exposes the shard's bucket ring.
func (s *LocalShard) Aggregator() *live.Aggregator { return s.agg }

// Store exposes the shard's store (nil for ring-only shards).
func (s *LocalShard) Store() *tweetdb.Store { return s.store }

// Ingestor exposes the shard's write path (nil for ring-only shards).
func (s *LocalShard) Ingestor() *live.Ingestor { return s.ing }

// Ingest implements Shard. With a store the batch goes through the
// ingestor (buffered; durable and ring-routed at flush); without one it
// lands in the ring directly. Either way the records stay columnar end
// to end.
func (s *LocalShard) Ingest(b *tweet.Batch) error {
	if s.ing == nil {
		return s.agg.IngestBatch(b)
	}
	return s.ing.IngestBatch(b)
}

// Flush implements Shard.
func (s *LocalShard) Flush() error {
	if s.ing == nil {
		return nil
	}
	return s.ing.Flush()
}

// Partial implements Shard.
func (s *LocalShard) Partial(req core.Request) (*live.ShardPartial, error) {
	return s.agg.FoldPartial(req)
}

// Coverage implements Shard.
func (s *LocalShard) Coverage(req core.Request) (string, error) {
	return s.agg.CoverageKeyRequest(req)
}

// Health implements Shard.
func (s *LocalShard) Health() (ShardHealth, error) {
	h := ShardHealth{
		Ingested: s.agg.Ingested(),
		Buckets:  s.agg.Buckets(),
		Builds:   s.agg.Builds(),
	}
	if s.store != nil {
		h.Tweets = s.store.Count()
		h.Scans = s.store.ScanCount()
	}
	return h, nil
}
