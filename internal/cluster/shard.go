package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"path/filepath"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/obs"
	"geomob/internal/ring"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Shard-side series (DESIGN.md §12). Fold latency covers one Partials
// call over its whole slot set; deliver latency covers one replicated
// frame batch landing durably.
var (
	mShardFoldSecs    = obs.Def.Histogram("geomob_shard_fold_seconds", "Latency of one shard Partials fold over its requested slots.", nil)
	mShardFolds       = obs.Def.Counter("geomob_shard_folds_total", "Shard Partials folds served.")
	mShardDeliverSecs = obs.Def.Histogram("geomob_shard_deliver_seconds", "Latency of one replicated frame batch landing durably on a shard.", nil)
	mShardFrames      = obs.Def.Counter("geomob_shard_delivered_frames_total", "Fresh replicated frames applied by shards (duplicates excluded).")
)

// Shard is one cluster member behind a uniform interface: the
// coordinator delivers slot-addressed replicated frames to it and
// scatters slot-set fold requests at it, without knowing whether the
// member lives in-process (LocalShard) or behind the internal HTTP API
// (HTTPShard → Node).
type Shard interface {
	// Deliver applies one replicated batch frame for slot, exactly
	// once: frames whose (sender, seq) fall at or below the shard's
	// durable high-water mark for that sender are acknowledged without
	// re-applying, which makes spool replay and redelivery after an
	// ambiguous failure idempotent. An empty sender disables
	// deduplication. Delivery is synchronous and durable on return.
	Deliver(sender string, seq uint64, slot int, frame []byte) error
	// Ingest absorbs one columnar batch directly (no replication, no
	// dedup): rows are routed to their placement slots internally. The
	// batch is only read; ownership stays with the caller.
	Ingest(b *tweet.Batch) error
	// Flush forces any buffered ingest out, so a subsequent Partials
	// observes everything ingested so far.
	Flush() error
	// Partials folds the shard's materialised bucket partials covering
	// req's window for each requested placement slot, in slot order.
	// ctx carries the query's trace (obs.TraceFrom); remote transports
	// propagate its ID via the obs.TraceHeader HTTP header.
	Partials(ctx context.Context, req core.Request, slots []int) ([]*live.ShardPartial, error)
	// Coverage fingerprints the shard's bucket coverage of req's window
	// over the requested slots — the coordinator's cache key component
	// that moves exactly when an ingest lands in a covered bucket.
	Coverage(ctx context.Context, req core.Request, slots []int) (string, error)
	// Export streams slot's full substream in canonical (user, time)
	// order as bounded batches — the handoff source when the slot moves
	// to another member.
	Export(slot int, fn func(*tweet.Batch) error) error
	// Health reports the shard's liveness counters; an error marks the
	// shard unreachable (degraded in the coordinator's /healthz).
	Health() (ShardHealth, error)
}

// Delivery is one spooled frame inside a batched delivery.
type Delivery struct {
	Seq   uint64
	Slot  int
	Frame []byte
}

// BatchDeliverer is the optional batched-delivery fast path: a lane that
// finds several frames queued for the same shard hands them over in one
// call, and the shard folds them into a single durable commit — one
// high-water-mark manifest write per drain instead of one per frame.
// The contract matches Deliver exactly: frames carry ascending sequence
// numbers from one sender, duplicates at or below the sender's mark are
// acknowledged without re-applying, and success means every frame is
// durable. Shards that don't implement it get per-frame Deliver.
type BatchDeliverer interface {
	DeliverBatch(sender string, ds []Delivery) error
}

// SnapshotExporter streams a slot's ring content as encoded bucket
// snapshot blobs — pre-resolved columns, not raw records — so a handoff
// receiver with the same assignment shape skips re-resolving what the
// sender already computed. The stream is deterministic over unchanged
// ring content (ascending bucket order, content-addressed encoding).
type SnapshotExporter interface {
	ExportSnap(slot int, fn func(blob []byte) error) error
}

// SnapshotReceiver applies one handoff snapshot blob, with the same
// (sender, seq) dedup and durability contract as Deliver. A blob whose
// shape hash does not match the receiver's ring is rejected permanently
// — the handoff driver only picks this path when both ends report the
// same shape hash.
type SnapshotReceiver interface {
	DeliverSnap(sender string, seq uint64, slot int, blob []byte) error
}

// ShardHealth is one shard's liveness report.
type ShardHealth struct {
	// Tweets is the durable record count (0 without a store); Ingested
	// counts records accepted into the bucket rings since boot.
	Tweets   int64 `json:"tweets"`
	Ingested int64 `json:"ingested"`
	// Buckets and Builds describe the rings: live buckets and partial
	// materialisations performed, summed over the shard's slots.
	Buckets int   `json:"buckets"`
	Builds  int64 `json:"builds"`
	// Scans counts store segment scans — the number the scatter-gather
	// exactness tests pin to zero on warm folds.
	Scans int64 `json:"scans"`
	// Slots counts placement slots holding at least one record here.
	Slots int `json:"slots"`
	// ShapeHash fingerprints the assignment machinery (bucket width,
	// scales, radii, area sets). Handoff streams snapshots — pre-resolved
	// columns — only between shards reporting identical hashes.
	ShapeHash string `json:"shape_hash,omitempty"`
	// Snapshot and Recovery report the durable-snapshot state: what is
	// on disk now, and what the last boot did (restored vs backfilled
	// buckets, tail replay size). Nil on shards without a snapshot dir.
	Snapshot *live.SnapshotStats `json:"snapshot,omitempty"`
	Recovery *live.RecoveryStats `json:"recovery,omitempty"`
}

// LocalShard is an in-process cluster member: one live bucket ring per
// placement slot — all stamped from a single shared assignment Shape —
// optionally in lockstep with one durable store. Slot-granular rings
// are what make replicated reads exact: a fold over any subset of
// slots never mixes users from slots another replica serves.
type LocalShard struct {
	shape *live.Shape
	store *tweetdb.Store // nil for a ring-only shard

	mu   sync.Mutex
	aggs [ring.Slots]*live.Aggregator
	// hwm holds the highest applied delivery sequence per sender,
	// persisted in the store manifest's meta table atomically with each
	// applied batch (memory-only without a store).
	hwm map[string]uint64
	// snaps holds one snapshot directory per placement slot when the
	// shard was opened with a snapshot dir; recovery records what the
	// boot hydration did with them.
	snaps    [ring.Slots]*live.SnapshotStore
	hasSnaps bool
	recovery live.RecoveryStats
}

const hwmMetaPrefix = "hwm:"

// NewLocalShard builds a shard over the store (nil for a ring-only
// shard) with the given ring options. When a store is present its
// records are backfilled into the slot rings — one scan at boot, then
// zero forever — and the per-sender delivery high-water marks are
// reloaded from the manifest meta table, so replayed spool frames
// deduplicate across restarts.
func NewLocalShard(store *tweetdb.Store, opts live.Options) (*LocalShard, error) {
	return NewLocalShardSnap(store, opts, "")
}

// NewLocalShardSnap is NewLocalShard plus a snapshot directory: each
// placement slot gets its own snapshot store under snapDir/slot-NN, and
// boot hydration runs the snapshot recovery state machine per slot —
// intact buckets restore from their files, only the segment tail
// replays, and any slot whose snapshot is unusable joins one combined
// full rescan instead of each paying for its own. An empty snapDir is
// the classic full-rescan boot.
func NewLocalShardSnap(store *tweetdb.Store, opts live.Options, snapDir string) (*LocalShard, error) {
	shape, err := live.NewShape(opts)
	if err != nil {
		return nil, err
	}
	if snapDir != "" && store == nil {
		return nil, fmt.Errorf("cluster: snapshot dir requires a store")
	}
	s := &LocalShard{shape: shape, store: store, hwm: map[string]uint64{}}
	for k := range s.aggs {
		s.aggs[k] = shape.NewAggregator()
	}
	if snapDir != "" {
		s.hasSnaps = true
		for k := range s.snaps {
			st, err := live.OpenSnapshotStore(filepath.Join(snapDir, fmt.Sprintf("slot-%02d", k)))
			if err != nil {
				return nil, err
			}
			s.snaps[k] = st
		}
	}
	if store != nil {
		if err := s.hydrate(); err != nil {
			return nil, fmt.Errorf("cluster: backfill shard rings: %w", err)
		}
		for key, val := range store.MetaPrefix(hwmMetaPrefix) {
			seq, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: corrupt delivery mark %s=%q: %w", key, val, err)
			}
			s.hwm[key[len(hwmMetaPrefix):]] = seq
		}
	}
	return s, nil
}

// hydrate fills the slot rings from the store at boot. Without
// snapshots every slot joins one full scan; with them each slot first
// runs its own recovery (restore + tail replay, filtered to its users)
// and only the slots whose snapshots were unusable share the rescan.
func (s *LocalShard) hydrate() error {
	var rescan []int
	if !s.hasSnaps {
		for k := 0; k < ring.Slots; k++ {
			rescan = append(rescan, k)
		}
	} else {
		for k := 0; k < ring.Slots; k++ {
			k := k
			st, err := live.Recover(s.aggs[k], s.store, s.snaps[k], live.RecoverOpts{
				Keep:       func(user int64) bool { return ring.SlotOf(user) == k },
				NoFullScan: true,
			})
			if err != nil {
				return fmt.Errorf("slot %d: %w", k, err)
			}
			s.recovery.Merge(st)
			if st.FullRescan {
				rescan = append(rescan, k)
			}
		}
	}
	if len(rescan) == 0 {
		return nil
	}
	return s.backfillSlots(rescan)
}

// backfillSlots replays the store into the named slot rings, routing
// each record by its user's placement slot and dropping rows owned by
// slots not in the set — one scan no matter how many slots need it.
func (s *LocalShard) backfillSlots(slots []int) error {
	var want [ring.Slots]bool
	for _, k := range slots {
		want[k] = true
	}
	it := s.store.Scan(tweetdb.Query{})
	defer it.Close()
	buf := &tweet.Batch{}
	for {
		blk, ok := it.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Len(); i++ {
			if !want[ring.SlotOf(blk.UserID[i])] {
				continue
			}
			buf.Append(blk.Row(i))
			if buf.Len() >= 1<<14 {
				if err := s.routeLocked(buf); err != nil {
					return err
				}
				buf.Reset()
			}
		}
	}
	if buf.Len() > 0 {
		if err := s.routeLocked(buf); err != nil {
			return err
		}
	}
	return it.Err()
}

// routeLocked splits one batch by placement slot and ingests each
// piece into its ring. Callers must not require s.mu (boot) or must
// hold it (Ingest).
func (s *LocalShard) routeLocked(b *tweet.Batch) error {
	var parts [ring.Slots]*tweet.Batch
	for i, user := range b.UserID {
		k := ring.SlotOf(user)
		p := parts[k]
		if p == nil {
			p = &tweet.Batch{}
			parts[k] = p
		}
		p.Append(b.Row(i))
	}
	for k, p := range parts {
		if p == nil {
			continue
		}
		if err := s.aggs[k].IngestBatch(p); err != nil {
			return fmt.Errorf("slot %d: %w", k, err)
		}
	}
	return nil
}

// Store exposes the shard's store (nil for ring-only shards).
func (s *LocalShard) Store() *tweetdb.Store { return s.store }

// Shape exposes the shared assignment machinery.
func (s *LocalShard) Shape() *live.Shape { return s.shape }

// SlotAggregator exposes one placement slot's bucket ring (tests and
// handoff plumbing).
func (s *LocalShard) SlotAggregator(slot int) *live.Aggregator { return s.aggs[slot] }

// Ingested sums records accepted into the slot rings.
func (s *LocalShard) Ingested() int64 {
	var n int64
	for _, a := range s.aggs {
		n += a.Ingested()
	}
	return n
}

// Builds sums partial materialisations over the slot rings.
func (s *LocalShard) Builds() int64 {
	var n int64
	for _, a := range s.aggs {
		n += a.Builds()
	}
	return n
}

// Buckets sums live buckets over the slot rings.
func (s *LocalShard) Buckets() int {
	n := 0
	for _, a := range s.aggs {
		n += a.Buckets()
	}
	return n
}

// Deliver implements Shard. The frame's batch is appended to the store
// together with the sender's advanced high-water mark in one atomic
// manifest commit, then routed into the slot's ring; a crash between
// the two is healed by the boot backfill. Duplicate (sender, seq)
// deliveries return success without re-applying.
func (s *LocalShard) Deliver(sender string, seq uint64, slot int, frame []byte) error {
	return s.DeliverBatch(sender, []Delivery{{Seq: seq, Slot: slot, Frame: frame}})
}

// DeliverBatch implements BatchDeliverer: several frames from one
// sender land in a single atomic store commit whose meta advances the
// sender's high-water mark to the batch's top sequence. That collapse
// is sound because lanes are strict FIFO per sender — the sequences in
// one drain are contiguous-from-pending and ascending, so acknowledging
// the top acknowledges them all. Duplicate frames (at or below the
// current mark) are dropped before the commit.
func (s *LocalShard) DeliverBatch(sender string, ds []Delivery) error {
	t0 := time.Now()
	batches := make([]*tweet.Batch, len(ds))
	for i, d := range ds {
		if d.Slot < 0 || d.Slot >= ring.Slots {
			return fmt.Errorf("%w: slot %d out of range", live.ErrBadInput, d.Slot)
		}
		b := &tweet.Batch{}
		if err := tweet.NewBatchReader(bytes.NewReader(d.Frame), int64(len(d.Frame))+1).Read(b); err != nil {
			return fmt.Errorf("%w: decode frame seq %d: %w", live.ErrBadInput, d.Seq, err)
		}
		batches[i] = b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	combined := &tweet.Batch{}
	var parts [ring.Slots]*tweet.Batch
	var maxSeq uint64
	fresh := false
	for i, d := range ds {
		if sender != "" && d.Seq <= s.hwm[sender] {
			continue
		}
		fresh = true
		if d.Seq > maxSeq {
			maxSeq = d.Seq
		}
		b := batches[i]
		p := parts[d.Slot]
		if p == nil {
			p = &tweet.Batch{}
			parts[d.Slot] = p
		}
		for r := 0; r < b.Len(); r++ {
			combined.Append(b.Row(r))
			p.Append(b.Row(r))
		}
	}
	if !fresh {
		return nil
	}
	if s.store != nil && combined.Len() > 0 {
		var meta map[string]string
		if sender != "" {
			meta = map[string]string{hwmMetaPrefix + sender: strconv.FormatUint(maxSeq, 10)}
		}
		if err := s.store.AppendBatchMeta(combined, meta); err != nil {
			return err
		}
	}
	for k, p := range parts {
		if p == nil {
			continue
		}
		if err := s.aggs[k].IngestBatch(p); err != nil {
			return fmt.Errorf("slot %d: %w", k, err)
		}
	}
	if sender != "" {
		s.hwm[sender] = maxSeq
	}
	mShardFrames.Add(int64(len(ds)))
	mShardDeliverSecs.Observe(time.Since(t0).Seconds())
	return nil
}

// Ingest implements Shard: a direct, non-replicated ingest used by the
// node's public ingest endpoint and single-process setups. Rows are
// routed to their placement slots; with a store the batch lands
// durably first.
func (s *LocalShard) Ingest(b *tweet.Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		if err := s.store.AppendBatch(b); err != nil {
			return err
		}
	}
	return s.routeLocked(b)
}

// Flush implements Shard; LocalShard applies synchronously.
func (s *LocalShard) Flush() error { return nil }

// Partials implements Shard.
func (s *LocalShard) Partials(ctx context.Context, req core.Request, slots []int) ([]*live.ShardPartial, error) {
	end := obs.TraceFrom(ctx).StartStage("shard_fold")
	t0 := time.Now()
	out := make([]*live.ShardPartial, 0, len(slots))
	for _, k := range slots {
		if k < 0 || k >= ring.Slots {
			end()
			return nil, fmt.Errorf("cluster: slot %d out of range", k)
		}
		p, err := s.aggs[k].FoldPartial(req)
		if err != nil {
			end()
			return nil, err
		}
		out = append(out, p)
	}
	mShardFolds.Inc()
	mShardFoldSecs.Observe(time.Since(t0).Seconds())
	end()
	return out, nil
}

// Coverage implements Shard: a fingerprint over the per-slot coverage
// keys, in slot order, so it moves exactly when any requested slot's
// covered buckets change.
func (s *LocalShard) Coverage(_ context.Context, req core.Request, slots []int) (string, error) {
	var buf bytes.Buffer
	for _, k := range slots {
		if k < 0 || k >= ring.Slots {
			return "", fmt.Errorf("cluster: slot %d out of range", k)
		}
		key, err := s.aggs[k].CoverageKeyRequest(req)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&buf, "%d=%s;", k, key)
	}
	return buf.String(), nil
}

// exportChunk bounds one handoff export batch.
const exportChunk = 4096

// Export implements Shard: the slot's complete substream in canonical
// (user, time) order, chunked. The canonical order makes a handoff
// stream deterministic, so re-running an interrupted handoff
// regenerates identical frames and the receiver's (sender, seq) dedup
// resumes cleanly.
func (s *LocalShard) Export(slot int, fn func(*tweet.Batch) error) error {
	if slot < 0 || slot >= ring.Slots {
		return fmt.Errorf("cluster: slot %d out of range", slot)
	}
	rows, err := s.aggs[slot].WindowTweets(math.MinInt64, math.MaxInt64)
	if err != nil {
		return err
	}
	for off := 0; off < len(rows); off += exportChunk {
		end := off + exportChunk
		if end > len(rows) {
			end = len(rows)
		}
		if err := fn(tweet.BatchOf(rows[off:end])); err != nil {
			return err
		}
	}
	return nil
}

// ExportSnap implements SnapshotExporter: the slot's ring streamed as
// encoded bucket snapshot blobs in ascending bucket order.
func (s *LocalShard) ExportSnap(slot int, fn func(blob []byte) error) error {
	if slot < 0 || slot >= ring.Slots {
		return fmt.Errorf("cluster: slot %d out of range", slot)
	}
	return s.aggs[slot].ExportSnapshots(fn)
}

// DeliverSnap implements SnapshotReceiver. The blob is decoded and
// fully validated against this shard's shape before anything commits —
// a corrupt or foreign-shape blob is a permanent delivery error, never
// a partial apply. An accepted blob's records land durably in the store
// with the sender's advanced mark (the same atomic commit Deliver
// uses), then the pre-resolved columns merge into the slot's ring
// without re-resolving assignments.
func (s *LocalShard) DeliverSnap(sender string, seq uint64, slot int, blob []byte) error {
	if slot < 0 || slot >= ring.Slots {
		return fmt.Errorf("%w: slot %d out of range", live.ErrBadInput, slot)
	}
	bs, err := s.shape.DecodeBucketSnapshot(blob)
	if err != nil {
		return fmt.Errorf("%w: %w", live.ErrBadInput, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sender != "" && seq <= s.hwm[sender] {
		return nil
	}
	if s.store != nil {
		var meta map[string]string
		if sender != "" {
			meta = map[string]string{hwmMetaPrefix + sender: strconv.FormatUint(seq, 10)}
		}
		if err := s.store.AppendBatchMeta(bs.Batch(), meta); err != nil {
			return err
		}
	}
	s.aggs[slot].InjectSnapshot(bs)
	if sender != "" {
		s.hwm[sender] = seq
	}
	return nil
}

// Snapshot commits every slot ring's dirty buckets to the shard's
// snapshot directories. All captures and the covered-segment catalogue
// are taken under the delivery lock, so each slot's manifest names
// exactly the segments whose records its ring reflects. Returns the
// summed stats over the slots.
func (s *LocalShard) Snapshot() (live.SnapshotStats, error) {
	if !s.hasSnaps {
		return live.SnapshotStats{}, fmt.Errorf("cluster: shard has no snapshot dir")
	}
	s.mu.Lock()
	var caps [ring.Slots]*live.RingCapture
	for k := range s.aggs {
		caps[k] = s.aggs[k].Capture()
	}
	var covered []string
	for _, m := range s.store.Segments() {
		covered = append(covered, m.File)
	}
	s.mu.Unlock()
	total := live.SnapshotStats{}
	for k := range caps {
		st, err := s.snaps[k].Commit(caps[k], covered)
		if err != nil {
			return total, fmt.Errorf("cluster: snapshot slot %d: %w", k, err)
		}
		s.aggs[k].MarkSnapshotted(caps[k])
		total.Buckets += st.Buckets
		total.Bytes += st.Bytes
		total.Written += st.Written
		if st.LastUnixMs > total.LastUnixMs {
			total.LastUnixMs = st.LastUnixMs
		}
	}
	return total, nil
}

// SnapshotStats sums the per-slot snapshot directories' stats (zero
// value without a snapshot dir).
func (s *LocalShard) SnapshotStats() live.SnapshotStats {
	total := live.SnapshotStats{}
	if !s.hasSnaps {
		return total
	}
	for k := range s.snaps {
		st := s.snaps[k].Stats()
		total.Buckets += st.Buckets
		total.Bytes += st.Bytes
		total.Written += st.Written
		if st.LastUnixMs > total.LastUnixMs {
			total.LastUnixMs = st.LastUnixMs
		}
	}
	return total
}

// Recovery reports what boot hydration did (zero value without a
// snapshot dir).
func (s *LocalShard) Recovery() live.RecoveryStats { return s.recovery }

// Health implements Shard.
func (s *LocalShard) Health() (ShardHealth, error) {
	h := ShardHealth{ShapeHash: fmt.Sprintf("%016x", s.shape.Hash())}
	for _, a := range s.aggs {
		h.Ingested += a.Ingested()
		h.Builds += a.Builds()
		h.Buckets += a.Buckets()
		if a.Ingested() > 0 {
			h.Slots++
		}
	}
	if s.store != nil {
		h.Tweets = s.store.Count()
		h.Scans = s.store.ScanCount()
	}
	if s.hasSnaps {
		snap := s.SnapshotStats()
		rec := s.recovery
		h.Snapshot = &snap
		h.Recovery = &rec
	}
	return h, nil
}
