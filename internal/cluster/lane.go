package cluster

import (
	"errors"
	"sync"
	"time"

	"geomob/internal/live"
	"geomob/internal/obs"
)

// ErrUnavailable marks a shard that cannot currently be reached — a
// transport failure or a 5xx from its node. The coordinator's query
// path fails over to another replica on it; the delivery lanes retry
// it with backoff. Sentinel fold errors (live.ErrNotCovered,
// live.ErrEvicted) are deliberately NOT unavailability: every replica
// would answer them identically, so failing over is pointless.
var ErrUnavailable = errors.New("cluster: shard unavailable")

// errPermanent marks a delivery the shard actively rejected (4xx): a
// retry loop would never succeed, so the lane drops the frame, counts
// it, and latches the error instead of wedging the queue forever.
var errPermanent = errors.New("cluster: delivery permanently rejected")

func isUnavailable(err error) bool { return errors.Is(err, ErrUnavailable) }

func permanentDeliveryError(err error) bool {
	return errors.Is(err, errPermanent) || errors.Is(err, live.ErrBadInput)
}

// laneEntry is one spooled frame staged for delivery to a node.
type laneEntry struct {
	seq   uint64
	slot  int
	rows  int
	frame []byte
}

// lane is one shard node's delivery pipeline: a bounded FIFO of
// spooled frames drained by a single sender goroutine in sequence
// order, with exponential backoff on failure. When the queue
// overflows (a down shard, a restart replay) the lane goes "gapped":
// the overflow stays in the spool and the sender refills from
// PendingForNode as the queue drains, so coordinator memory stays
// bounded by depth while the spool holds the tail.
type lane struct {
	node   int
	shard  Shard
	sp     spool
	sender string
	depth  int
	base   time.Duration
	max    time.Duration

	mu         sync.Mutex
	cv         *sync.Cond
	q          []*laneEntry
	gapped     bool
	lastEnq    uint64 // highest seq ever staged in q
	attempting bool
	down       bool // last attempt failed; cleared on the next success
	closed     bool

	delivered int64 // rows delivered
	batches   int64 // frames delivered
	retries   int64
	failures  int64
	dropped   int64 // frames permanently rejected and abandoned
	lastErr   string
	errAt     time.Time

	// Per-node series on the process registry (DESIGN.md §12), labelled
	// by positional member name so every coordinator over the same shard
	// order feeds the same series.
	mRows, mFrames, mRetries, mFailures, mDropped *obs.Counter
	mDeliverSecs                                  *obs.Histogram

	closeCh chan struct{}
}

func newLane(node int, shard Shard, sp spool, depth int, base, max time.Duration) *lane {
	l := &lane{
		node: node, shard: shard, sp: sp, sender: sp.SenderID(),
		depth: depth, base: base, max: max,
		closeCh: make(chan struct{}),
	}
	l.cv = sync.NewCond(&l.mu)
	nd := memberName(node)
	l.mRows = obs.Def.Counter("geomob_lane_delivered_rows_total", "Rows delivered (and spool-acked) per shard lane.", "node", nd)
	l.mFrames = obs.Def.Counter("geomob_lane_delivered_frames_total", "Frames delivered per shard lane.", "node", nd)
	l.mRetries = obs.Def.Counter("geomob_lane_retries_total", "Delivery attempts deferred to backoff per shard lane.", "node", nd)
	l.mFailures = obs.Def.Counter("geomob_lane_failures_total", "Failed delivery attempts per shard lane.", "node", nd)
	l.mDropped = obs.Def.Counter("geomob_lane_dropped_frames_total", "Frames permanently rejected and abandoned per shard lane.", "node", nd)
	l.mDeliverSecs = obs.Def.Histogram("geomob_lane_deliver_seconds", "Latency of one delivery attempt (single frame or whole drain).", nil, "node", nd)
	obs.Def.GaugeFunc("geomob_lane_queue_depth", "Frames currently staged per shard lane.",
		func() float64 { return float64(l.status().queued) }, "node", nd)
	return l
}

// enqueue stages one freshly-spooled frame. A full (or already gapped)
// queue flips the lane to gapped: the frame is already durable in the
// spool, and the sender will pull it back via PendingForNode once the
// queue drains.
func (l *lane) enqueue(seq uint64, slot, rows int, frame []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.gapped || len(l.q) >= l.depth {
		l.gapped = true
		return
	}
	l.q = append(l.q, &laneEntry{seq: seq, slot: slot, rows: rows, frame: frame})
	if seq > l.lastEnq {
		l.lastEnq = seq
	}
	l.cv.Broadcast()
}

// markGapped marks the lane as having spool-resident work (boot replay
// of a recovered WAL).
func (l *lane) markGapped() {
	l.mu.Lock()
	l.gapped = true
	l.cv.Broadcast()
	l.mu.Unlock()
}

// run is the sender loop: deliver the queue head, ack the spool on
// success, back off exponentially on failure. Strict FIFO in seq order
// keeps per-sender sequences monotone at the shard, which is what
// makes its high-water-mark dedup sound.
func (l *lane) run(wg *sync.WaitGroup) {
	defer wg.Done()
	backoff := time.Duration(0)
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.gapped && !l.closed {
			l.cv.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		if len(l.q) == 0 {
			// Gapped: refill from the spool past the highest staged seq.
			after := l.lastEnq
			l.mu.Unlock()
			recs, err := l.sp.PendingForNode(l.node, after, l.depth)
			l.mu.Lock()
			if err != nil {
				l.failures++
				l.lastErr = err.Error()
				l.errAt = time.Now()
				l.cv.Broadcast()
				l.mu.Unlock()
				if !l.sleep(l.base) {
					return
				}
				continue
			}
			if len(recs) == 0 {
				l.gapped = false
				l.cv.Broadcast()
				l.mu.Unlock()
				continue
			}
			for i := range recs {
				r := &recs[i]
				l.q = append(l.q, &laneEntry{seq: r.Seq, slot: r.Slot, rows: r.Rows, frame: r.Frame})
				if r.Seq > l.lastEnq {
					l.lastEnq = r.Seq
				}
			}
		}
		// Drain: a batch-capable shard takes the whole staged queue in
		// one durable commit (one high-water-mark advance per drain);
		// otherwise deliver the head alone. The drained prefix is stable
		// across the unlock — enqueue only appends, and only this
		// goroutine removes.
		ents := l.q[:1]
		bd, batching := l.shard.(BatchDeliverer)
		if batching && len(l.q) > 1 {
			ents = l.q[:len(l.q):len(l.q)]
		}
		l.attempting = true
		l.mu.Unlock()

		t0 := time.Now()
		var err error
		if len(ents) > 1 {
			ds := make([]Delivery, len(ents))
			for i, e := range ents {
				ds[i] = Delivery{Seq: e.seq, Slot: e.slot, Frame: e.frame}
			}
			if err = bd.DeliverBatch(l.sender, ds); err != nil {
				// Retry the head alone: a transient failure backs off as
				// usual, and a single poison frame is isolated and dropped
				// instead of permanently rejecting the whole drain.
				ents = ents[:1]
				err = l.shard.Deliver(l.sender, ents[0].seq, ents[0].slot, ents[0].frame)
			}
		} else {
			err = l.shard.Deliver(l.sender, ents[0].seq, ents[0].slot, ents[0].frame)
		}

		l.mDeliverSecs.Observe(time.Since(t0).Seconds())

		l.mu.Lock()
		l.attempting = false
		if err == nil {
			if len(ents) == 1 {
				_ = l.sp.Ack(ents[0].seq, l.node)
			} else {
				seqs := make([]uint64, len(ents))
				for i, e := range ents {
					seqs[i] = e.seq
				}
				_ = l.sp.AckBatch(seqs, l.node)
			}
			for _, e := range ents {
				l.delivered += int64(e.rows)
				l.mRows.Add(int64(e.rows))
			}
			l.q = l.q[len(ents):]
			l.batches += int64(len(ents))
			l.mFrames.Add(int64(len(ents)))
			l.down = false
			backoff = 0
			l.cv.Broadcast()
			l.mu.Unlock()
			continue
		}
		l.failures++
		l.mFailures.Inc()
		l.lastErr = err.Error()
		l.errAt = time.Now()
		if permanentDeliveryError(err) {
			// The shard rejected the frame outright; retrying cannot
			// succeed. Drop it (counted, latched) rather than wedge
			// every later frame behind it.
			_ = l.sp.Ack(ents[0].seq, l.node)
			l.q = l.q[1:]
			l.dropped++
			l.mDropped.Inc()
			l.cv.Broadcast()
			l.mu.Unlock()
			continue
		}
		l.down = true
		l.retries++
		l.mRetries.Inc()
		l.cv.Broadcast()
		l.mu.Unlock()
		if backoff < l.base {
			backoff = l.base
		} else {
			backoff *= 2
			if backoff > l.max {
				backoff = l.max
			}
		}
		if !l.sleep(backoff) {
			return
		}
	}
}

// sleep waits d or until the lane closes; false means closed.
func (l *lane) sleep(d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-l.closeCh:
		return false
	}
}

// waitSettled blocks until the lane has nothing left to attempt (queue
// and spool tail drained) or is in a failure state. A down lane
// returns immediately: its frames are safe in the spool, and ingest
// acknowledgement must not wait out a dead shard's backoff.
func (l *lane) waitSettled() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed || l.down {
			return
		}
		if len(l.q) == 0 && !l.gapped && !l.attempting {
			return
		}
		l.cv.Wait()
	}
}

func (l *lane) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.cv.Broadcast()
	l.mu.Unlock()
	close(l.closeCh)
}

// laneStatus is a consistent snapshot for health reporting.
type laneStatus struct {
	queued    int
	gapped    bool
	down      bool
	delivered int64
	batches   int64
	retries   int64
	failures  int64
	dropped   int64
	lastErr   string
	errAt     time.Time
}

func (l *lane) status() laneStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	return laneStatus{
		queued:    len(l.q),
		gapped:    l.gapped,
		down:      l.down,
		delivered: l.delivered,
		batches:   l.batches,
		retries:   l.retries,
		failures:  l.failures,
		dropped:   l.dropped,
		lastErr:   l.lastErr,
		errAt:     l.errAt,
	}
}
