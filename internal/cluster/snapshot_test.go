package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/ring"
	"geomob/internal/testx"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// corruptOneSnapBlob flips a byte in the largest bucket blob under any
// slot directory and returns how many files it damaged (0 or 1).
func corruptOneSnapBlob(t *testing.T, snapDir string) int {
	t.Helper()
	var target string
	var size int64
	err := filepath.Walk(snapDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".gmsnap") && info.Size() > size {
			target, size = path, info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if target == "" {
		return 0
	}
	raw, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xA5
	if err := os.WriteFile(target, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return 1
}

// queryShard folds req over a throwaway single-member coordinator — the
// scatter-gather answer a restarted member would serve.
func queryShard(t *testing.T, s Shard, req core.Request) *core.Result {
	t.Helper()
	coord, err := NewCoordinator([]Shard{s}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, _, err := coord.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardSnapshotRestart is the tentpole's cluster-restart contract:
// a store-backed member with a snapshot directory comes back from a
// kill by restoring its per-slot bucket files — zero store scans after
// a clean snapshot, tail-only replay otherwise, per-bucket cold
// backfill when a file is corrupt — and every recovered state answers
// bit-identically to a single-node cold execute.
func TestShardSnapshotRestart(t *testing.T) {
	all := failoverCorpus(t, 400, 53, 59)
	cut := len(all) * 3 / 4
	storeDir, snapDir := t.TempDir(), t.TempDir()
	opts := live.Options{BucketWidth: 7 * 24 * time.Hour}

	store, err := tweetdb.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := NewLocalShardSnap(store, opts, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator([]Shard{shard}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	for _, tw := range all[:cut] {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}
	waitNodeDrained(t, coord, 0, 10*time.Second)
	snapSt, err := shard.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snapSt.Buckets == 0 || snapSt.Written == 0 || snapSt.Bytes == 0 {
		t.Fatalf("snapshot wrote nothing: %+v", snapSt)
	}
	// The tail: records delivered after the snapshot commit.
	for _, tw := range all[cut:] {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}
	waitNodeDrained(t, coord, 0, 10*time.Second)
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	req := core.Request{}
	ref := singleNodeRef(t, all, req)

	// Restart with a stale snapshot: intact buckets restore, only the
	// tail replays, nothing falls back to a full rescan.
	store2, err := tweetdb.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewLocalShardSnap(store2, opts, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovery()
	if rec.FullRescan || rec.Restored == 0 || rec.SnapErrors != 0 || rec.Backfilled != 0 {
		t.Fatalf("tail restart recovery went wrong: %+v", rec)
	}
	if rec.TailSegments == 0 || rec.TailRecords != int64(len(all)-cut) {
		t.Fatalf("tail restart replayed %d records over %d segments, want %d records",
			rec.TailRecords, rec.TailSegments, len(all)-cut)
	}
	if !testx.ResultsBitEqual(queryShard(t, s2, req), ref) {
		t.Fatal("tail-restart answer diverges from single-node execute")
	}

	// A fresh snapshot covering everything makes the next restart free:
	// no scans, no segment loads, no replay of any kind.
	if _, err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	store3, err := tweetdb.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := NewLocalShardSnap(store3, opts, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	rec = s3.Recovery()
	if rec.FullRescan || rec.SnapErrors != 0 || rec.Backfilled != 0 ||
		rec.TailSegments != 0 || rec.TailRecords != 0 {
		t.Fatalf("clean restart was not replay-free: %+v", rec)
	}
	if got := store3.ScanCount(); got != 0 {
		t.Fatalf("clean restart scanned the store %d times, want 0", got)
	}
	if !testx.ResultsBitEqual(queryShard(t, s3, req), ref) {
		t.Fatal("clean-restart answer diverges from single-node execute")
	}
	h, err := s3.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Snapshot == nil || h.Recovery == nil || h.Snapshot.Buckets == 0 || h.ShapeHash == "" {
		t.Fatalf("health misses snapshot state: %+v", h)
	}

	// Corrupt one bucket file: only that bucket degrades to a windowed
	// cold backfill; the answer does not move.
	if corruptOneSnapBlob(t, snapDir) != 1 {
		t.Fatal("no snapshot blob found to corrupt")
	}
	store4, err := tweetdb.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := NewLocalShardSnap(store4, opts, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	rec = s4.Recovery()
	if rec.FullRescan || rec.SnapErrors != 1 || rec.Backfilled != 1 {
		t.Fatalf("corrupt-blob recovery should degrade exactly one bucket: %+v", rec)
	}
	if !testx.ResultsBitEqual(queryShard(t, s4, req), ref) {
		t.Fatal("corrupt-blob restart answer diverges from single-node execute")
	}
}

// TestDeliverBatchDedup pins the batched fast path's contract: one
// durable commit applies every fresh frame and advances the sender's
// mark to the top sequence, duplicates inside and across batches drop
// without re-applying, and the mark survives a restart.
func TestDeliverBatchDedup(t *testing.T) {
	dir := t.TempDir()
	store, err := tweetdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLocalShard(store, live.Options{BucketWidth: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	mkFrame := func(id int64) (int, []byte) {
		tw := tweet.Tweet{ID: id, UserID: 40 + id, TS: 1378000000000 + id, Lat: -33.87, Lon: 151.21}
		frame, err := tweet.AppendFrame(nil, tweet.BatchOf([]tweet.Tweet{tw}))
		if err != nil {
			t.Fatal(err)
		}
		return ring.SlotOf(tw.UserID), frame
	}
	var ds []Delivery
	for i := int64(1); i <= 4; i++ {
		slot, frame := mkFrame(i)
		ds = append(ds, Delivery{Seq: uint64(i), Slot: slot, Frame: frame})
	}
	segsBefore := len(store.Segments())
	if err := s.DeliverBatch("sender-a", ds); err != nil {
		t.Fatal(err)
	}
	if got := s.Ingested(); got != 4 {
		t.Fatalf("batch ingested %d records, want 4", got)
	}
	if got := len(store.Segments()) - segsBefore; got != 1 {
		t.Fatalf("batch committed %d segments, want 1", got)
	}
	// The whole batch again, and each frame singly: all duplicates.
	if err := s.DeliverBatch("sender-a", ds); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if err := s.Deliver("sender-a", d.Seq, d.Slot, d.Frame); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Ingested(); got != 4 {
		t.Fatalf("redelivery re-applied: ingested %d, want 4", got)
	}
	// A partially duplicate batch applies only the fresh tail.
	slot5, frame5 := mkFrame(5)
	mixed := append(append([]Delivery(nil), ds[2:]...), Delivery{Seq: 5, Slot: slot5, Frame: frame5})
	if err := s.DeliverBatch("sender-a", mixed); err != nil {
		t.Fatal(err)
	}
	if got := s.Ingested(); got != 5 {
		t.Fatalf("mixed batch ingested %d records, want 5", got)
	}
	// The advanced mark is durable: a rebuilt shard over the same store
	// still drops everything at or below it.
	store2, err := tweetdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewLocalShard(store2, live.Options{BucketWidth: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.DeliverBatch("sender-a", mixed); err != nil {
		t.Fatal(err)
	}
	if got := store2.Count(); got != 5 {
		t.Fatalf("post-restart redelivery stored %d records, want 5", got)
	}
}

// TestHandoffSnapshotStreaming: when both ends of a handoff share the
// assignment shape, joining streams snapshot blobs (visible as the
// receiver's durable handoffsnap sender marks) and the grown cluster
// answers exactly; a source hidden behind a shape-blind wrapper falls
// back to the record-export path under the classic handoff sender.
func TestHandoffSnapshotStreaming(t *testing.T) {
	all := failoverCorpus(t, 500, 61, 67)
	opts := live.Options{BucketWidth: 7 * 24 * time.Hour}
	newStored := func() *LocalShard {
		st, err := tweetdb.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewLocalShard(st, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	coord, err := NewCoordinator([]Shard{newStored(), newStored()}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for _, tw := range all {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}

	joined := newStored()
	if err := coord.AddShard(joined); err != nil {
		t.Fatal(err)
	}
	req := core.Request{}
	res, _, err := coord.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ResultsBitEqual(res, singleNodeRef(t, all, req)) {
		t.Fatal("post-join answer diverges from single-node execute")
	}
	snapSenders, recSenders := 0, 0
	for key := range joined.Store().MetaPrefix(hwmMetaPrefix) {
		switch {
		case strings.HasPrefix(key, hwmMetaPrefix+"handoffsnap:"):
			snapSenders++
		case strings.HasPrefix(key, hwmMetaPrefix+"handoff:"):
			recSenders++
		}
	}
	if snapSenders == 0 || recSenders != 0 {
		t.Fatalf("shape-matched join should stream snapshots only: %d snapshot senders, %d record senders",
			snapSenders, recSenders)
	}

	// Sources that don't export snapshots (the chaos wrapper only
	// implements Shard) force the record-export path.
	coord2, err := NewCoordinator([]Shard{newChaosShard(newStored()), newChaosShard(newStored())}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	for _, tw := range all[:200] {
		if err := coord2.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord2.Flush(); err != nil {
		t.Fatal(err)
	}
	joined2 := newStored()
	if err := coord2.AddShard(joined2); err != nil {
		t.Fatal(err)
	}
	// Stats only: the 200-record subset is too sparse for the gravity
	// fit the default request includes.
	statsReq := core.Request{Analyses: []core.Analysis{core.AnalysisStats}}
	res, _, err = coord2.Query(statsReq)
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ResultsBitEqual(res, singleNodeRef(t, all[:200], statsReq)) {
		t.Fatal("record-path join answer diverges from single-node execute")
	}
	snapSenders, recSenders = 0, 0
	for key := range joined2.Store().MetaPrefix(hwmMetaPrefix) {
		switch {
		case strings.HasPrefix(key, hwmMetaPrefix+"handoffsnap:"):
			snapSenders++
		case strings.HasPrefix(key, hwmMetaPrefix+"handoff:"):
			recSenders++
		}
	}
	if recSenders == 0 || snapSenders != 0 {
		t.Fatalf("snapshot-blind sources should stream records only: %d snapshot senders, %d record senders",
			snapSenders, recSenders)
	}
}
