package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/synth"
	"geomob/internal/testx"
	"geomob/internal/tweet"
)

func TestPartitionerStability(t *testing.T) {
	if _, err := NewPartitioner(0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	p1, err := NewPartitioner(1)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := NewPartitioner(8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	for id := int64(0); id < 100_000; id++ {
		if got := p1.Partition(id); got != 0 {
			t.Fatalf("1-way partition of %d = %d", id, got)
		}
		k := p8.Partition(id)
		if k < 0 || k >= 8 {
			t.Fatalf("8-way partition of %d = %d, out of range", id, k)
		}
		if k != p8.Partition(id) {
			t.Fatalf("partition of %d is not deterministic", id)
		}
		counts[k]++
	}
	// Dense ids must spread, not stripe: every partition within 10% of
	// uniform over 100k ids (binomial deviation is far below that).
	for k, c := range counts {
		if c < 11_250 || c > 13_750 {
			t.Fatalf("partition %d holds %d of 100000 dense ids; want ~12500", k, c)
		}
	}
	// The rule is a pure function of the id — pin a few values so an
	// accidental hash change (which would strand every stored partition)
	// fails loudly.
	pinned := map[int64]int{0: p8.Partition(0), 1: p8.Partition(1), 1 << 40: p8.Partition(1 << 40)}
	again, _ := NewPartitioner(8)
	for id, want := range pinned {
		if got := again.Partition(id); got != want {
			t.Fatalf("partition of %d changed between instances: %d vs %d", id, got, want)
		}
	}
}

// TestHTTPClusterMatchesExecute drives the full wire path — coordinator →
// HTTPShard → Node → LocalShard and back through the binary partial codec
// — and checks the answer is still bit-identical to a single-node pass.
func TestHTTPClusterMatchesExecute(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(400, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	all, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}

	var shards []Shard
	for i := 0; i < 2; i++ {
		local, err := NewLocalShard(nil, live.Options{BucketWidth: 7 * 24 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewNode(local, NodeOptions{}))
		t.Cleanup(srv.Close)
		shards = append(shards, NewHTTPShard(srv.URL, srv.Client()))
	}
	coord, err := NewCoordinator(shards, CoordinatorOptions{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for _, tw := range all {
		if err := coord.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}

	sorted := append([]tweet.Tweet(nil), all...)
	sort.Sort(tweet.ByUserTime(sorted))
	study := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 1})

	req := core.Request{}
	res, cached, err := coord.Query(req)
	if err != nil || cached {
		t.Fatalf("http cluster query: cached=%v err=%v", cached, err)
	}
	ref, err := study.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ResultsBitEqual(res, ref) {
		t.Fatal("http scatter-gather diverges from single-node execute")
	}

	// Warm repeat across the wire: served from the coordinator cache.
	res2, cached, err := coord.Query(req)
	if err != nil || !cached || !testx.ResultsBitEqual(res2, ref) {
		t.Fatalf("warm http repeat: cached=%v err=%v", cached, err)
	}

	// Sentinel errors survive the wire: a shape the shard rings do not
	// materialise reports ErrNotCovered through HTTP status mapping.
	_, _, err = coord.Query(core.Request{
		Analyses: []core.Analysis{core.AnalysisPopulation},
		Radius:   123,
	})
	if !errors.Is(err, live.ErrNotCovered) {
		t.Fatalf("custom radius over http: err = %v, want ErrNotCovered", err)
	}

	// Shard health flows back through the coordinator.
	for _, st := range coord.Health() {
		if !st.OK || st.Degraded {
			t.Fatalf("shard %d unhealthy: %+v", st.Index, st)
		}
		if st.Health.Ingested == 0 {
			t.Fatalf("shard %d reports zero ingested records", st.Index)
		}
	}
}

// TestNodeIngestLimits: the shard ingest endpoint rejects malformed
// records with 400 and honours the body bound with 413.
func TestNodeIngestLimits(t *testing.T) {
	local, err := NewLocalShard(nil, live.Options{BucketWidth: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewNode(local, NodeOptions{MaxBodyBytes: 256}))
	t.Cleanup(srv.Close)

	resp, err := srv.Client().Post(srv.URL+pathIngest, "application/x-ndjson",
		strings.NewReader(`{"id":1,"user":1,"ts":1,"lat":999,"lon":0}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("invalid record: status %d, want 400", resp.StatusCode)
	}

	big := strings.Repeat(`{"id":1,"user":1,"ts":1,"lat":-33.8,"lon":151.2}`+"\n", 64)
	resp, err = srv.Client().Post(srv.URL+pathIngest, "application/x-ndjson", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 413 {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}
