// Package cluster scales the live pipeline horizontally: it partitions
// the tweet stream by a stable hash of the user id across N shard nodes
// and answers Study requests by scatter-gather (DESIGN.md §8).
//
// The design rests on the invariant PRs 1 and 4 proved: user-disjoint
// observer state merges bit-identically to a cold serial pass. Hash
// partitioning keeps every user's trajectory whole on one shard, so
//
//   - every consecutive-tweet quantity (waiting time, displacement, flow
//     transition, gyration addend) is computed entirely on one shard with
//     the single-sourced mobility ops the streaming extractor uses;
//   - the additive aggregates (tweet counts, per-area unique-user counts,
//     flow matrices, span bounds) sum or union exactly across shards;
//   - only the per-user Table I series need care: the global serial order
//     interleaves the users of all shards by ascending id, so shards ship
//     their state per user (live.ShardPartial) and the coordinator
//     re-interleaves before flattening.
//
// The pieces:
//
//   - Partitioner: the stable user-id hash → partition rule (the only
//     piece every node must agree on);
//   - Shard: one partition behind a uniform interface — LocalShard runs
//     in-process (the -partitions mode of cmd/mobserve, giving
//     multi-core boxes per-partition ingest parallelism with no network
//     hop), HTTPShard talks to a remote ShardNode over the internal
//     /shard/v1 API served by Node;
//   - Coordinator: routes ingest batches to owning shards (batched,
//     concurrent, per-shard bounded queues for backpressure), scatters
//     queries, merges the returned partials through core.FoldedPass /
//     core.AssembleFolded, and snapshot-caches results keyed on the
//     fingerprint-sum of the shards' bucket-coverage keys — so an
//     N-shard cluster answer is bit-identical to a single-node
//     Study.Execute rescan (property-tested) and warm repeats do zero
//     shard folds.
package cluster

import "fmt"

// Partitioner assigns users to partitions by a stable hash of the user
// id. Every record of one user — and hence every consecutive-tweet
// transition the mobility analyses depend on — lands on the same shard,
// which is the entire exactness argument of the scatter-gather merge.
// The hash is a fixed function of the user id alone (no seed, no
// process state), so any node, in any process, on any day, routes a
// user identically.
type Partitioner struct {
	n int
}

// NewPartitioner builds a partitioner over n partitions.
func NewPartitioner(n int) (Partitioner, error) {
	if n < 1 {
		return Partitioner{}, fmt.Errorf("cluster: partition count must be positive, got %d", n)
	}
	return Partitioner{n: n}, nil
}

// Partitions returns the partition count.
func (p Partitioner) Partitions() int { return p.n }

// Partition maps a user id to its owning partition in [0, Partitions()).
// User ids are assigned densely by upstream systems, so the id is mixed
// through the SplitMix64 finalizer before the modulus — adjacent ids
// spread uniformly instead of striping.
func (p Partitioner) Partition(userID int64) int {
	z := uint64(userID)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(p.n))
}
