// Package cluster scales the live pipeline horizontally and makes it
// fault-tolerant: a consistent-hash ring places user-hash slots on
// shard members with replication factor R, a spooled delivery layer
// makes ingest acknowledgement durable and replayable, and queries
// scatter-gather over any one live replica per slot (DESIGN.md §8,
// §10).
//
// The design rests on the invariant PRs 1 and 4 proved: user-disjoint
// observer state merges bit-identically to a cold serial pass. Slot
// placement (internal/ring) keeps every user's trajectory whole inside
// one placement slot, and every replica of a slot applies the identical
// slot substream, so
//
//   - every consecutive-tweet quantity (waiting time, displacement, flow
//     transition, gyration addend) is computed entirely within one slot
//     with the single-sourced mobility ops the streaming extractor uses;
//   - the additive aggregates (tweet counts, per-area unique-user counts,
//     flow matrices, span bounds) sum or union exactly across slots;
//   - the per-user Table I series re-interleave by ascending user id
//     when the coordinator merges the slot partials — and it does not
//     matter which replica served which slot, because replicas of a
//     slot are bit-identical by construction.
//
// The pieces:
//
//   - internal/ring: the versioned consistent-hash placement rule — a
//     pure function of (ring version, user id) every node agrees on;
//   - Shard: one member behind a uniform interface — LocalShard runs
//     in-process with one bucket ring per slot, HTTPShard talks to a
//     remote member over the internal /shard/v1 API served by Node;
//   - spool (internal/wal behind CoordinatorOptions.WALDir): the ingest
//     acknowledgement point — frames are acked to the client once
//     spooled, delivered to each replica by per-member lanes with
//     retry and backoff, and truncated once every replica acked;
//   - Coordinator: routes ingest into per-slot frames, replicates them
//     via the spool and lanes, scatters queries over one live current
//     replica per slot with failover, merges the partials through
//     core.FoldedPass / core.AssembleFolded, and snapshot-caches
//     results keyed on the served topology plus the replicas'
//     bucket-coverage keys — so a replicated cluster answer is
//     bit-identical to a single-node Study.Execute rescan
//     (property-tested, including under single-member crashes) and
//     warm repeats do zero shard folds;
//   - handoff (Coordinator.AddShard / RemoveShard): live membership
//     changes that stream moved slots from settled replicas before the
//     new ring version takes effect.
//
// Partitioner remains as the PR 5 modulo-placement rule for the
// in-process -partitions mode's store layout; ring placement supersedes
// it for cluster routing.
package cluster

import "fmt"

// Partitioner assigns users to partitions by a stable hash of the user
// id. Every record of one user — and hence every consecutive-tweet
// transition the mobility analyses depend on — lands on the same shard,
// which is the entire exactness argument of the scatter-gather merge.
// The hash is a fixed function of the user id alone (no seed, no
// process state), so any node, in any process, on any day, routes a
// user identically.
type Partitioner struct {
	n int
}

// NewPartitioner builds a partitioner over n partitions.
func NewPartitioner(n int) (Partitioner, error) {
	if n < 1 {
		return Partitioner{}, fmt.Errorf("cluster: partition count must be positive, got %d", n)
	}
	return Partitioner{n: n}, nil
}

// Partitions returns the partition count.
func (p Partitioner) Partitions() int { return p.n }

// Partition maps a user id to its owning partition in [0, Partitions()).
// User ids are assigned densely by upstream systems, so the id is mixed
// through the SplitMix64 finalizer before the modulus — adjacent ids
// spread uniformly instead of striping.
func (p Partitioner) Partition(userID int64) int {
	z := uint64(userID)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(p.n))
}
