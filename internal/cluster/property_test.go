package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/synth"
	"geomob/internal/testx"
	"geomob/internal/tweet"
)

// randomBatches shuffles a corpus and splits it into 1..maxBatches random
// append batches — the adversarial arrival schedule: nothing about batch
// composition or order is aligned with users, time, buckets or
// partitions.
func randomBatches(rng *rand.Rand, all []tweet.Tweet, maxBatches int) [][]tweet.Tweet {
	shuffled := append([]tweet.Tweet(nil), all...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n := 1 + rng.Intn(maxBatches)
	var batches [][]tweet.Tweet
	for off := 0; off < len(shuffled); {
		size := 1 + rng.Intn(2*len(shuffled)/n+1)
		end := off + size
		if end > len(shuffled) {
			end = len(shuffled)
		}
		batches = append(batches, shuffled[off:end])
		off = end
	}
	return batches
}

// clusterProperty is the corpus plus the reference single-node answers
// shared by every shard-count subtest.
type clusterProperty struct {
	all    []tweet.Tweet
	reqs   []core.Request
	refs   []*core.Result
	refErr []error
}

func buildClusterProperty(t *testing.T) *clusterProperty {
	t.Helper()
	gen, err := synth.NewGenerator(synth.DefaultConfig(900, 23, 29))
	if err != nil {
		t.Fatal(err)
	}
	all, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]tweet.Tweet(nil), all...)
	sort.Sort(tweet.ByUserTime(sorted))
	minTS, maxTS := sorted[0].TS, sorted[0].TS
	for _, tw := range sorted {
		minTS = min(minTS, tw.TS)
		maxTS = max(maxTS, tw.TS)
	}

	rng := rand.New(rand.NewSource(101))
	randWindow := func() (time.Time, time.Time) {
		span := maxTS - minTS
		a := minTS + rng.Int63n(span)
		b := minTS + rng.Int63n(span)
		if a > b {
			a, b = b, a
		}
		return time.UnixMilli(a).UTC(), time.UnixMilli(b + 1).UTC()
	}

	reqs := []core.Request{
		{}, // the full study over the full stream
		{Analyses: []core.Analysis{core.AnalysisStats}},
		{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}},
		{Analyses: []core.Analysis{core.AnalysisPopulation}, Scales: []census.Scale{census.ScaleMetropolitan}},
	}
	for i := 0; i < 4; i++ {
		from, to := randWindow()
		an := core.Analyses()[rng.Intn(4)]
		req := core.Request{Analyses: []core.Analysis{an}, From: from, To: to}
		if rng.Intn(2) == 0 {
			req.Scales = []census.Scale{census.Scales()[rng.Intn(3)]}
		}
		reqs = append(reqs, req)
	}
	// A window guaranteed to match nothing: the cluster must agree on
	// ErrEmptyDataset.
	reqs = append(reqs, core.Request{
		From: time.UnixMilli(minTS - 10_000).UTC(),
		To:   time.UnixMilli(minTS - 1).UTC(),
	})

	p := &clusterProperty{all: all, reqs: reqs}
	study1 := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 1})
	study8 := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 8})
	for ri, req := range reqs {
		// Reference errors are kept, not rejected: a random window can
		// legitimately be degenerate (empty, or too sparse for a fit),
		// and the cluster must reproduce the same failure.
		ref, err := study1.Execute(context.Background(), req)
		p.refs = append(p.refs, ref)
		p.refErr = append(p.refErr, err)
		// Workers 1 ≡ 8 is §4's contract; pin it once so the cluster
		// comparison below is against *the* single-node answer, not one
		// worker count's.
		if ri == 0 {
			ref8, err8 := study8.Execute(context.Background(), req)
			if err8 != nil || !testx.ResultsBitEqual(ref, ref8) {
				t.Fatalf("req 0: workers 1 and 8 diverge (err8=%v)", err8)
			}
		}
	}
	return p
}

// TestScatterGatherMatchesExecuteProperty is the subsystem's signature
// invariant (DESIGN.md §8): for every shard count, random partition-blind
// arrival schedules and random [From, To) windows, the coordinator's
// scatter-gather answer is bit-for-bit identical (IEEE-754 bits, NaN
// included) to a cold single-node Study.Execute over the same records —
// across all analyses — and a warm cache repeat issues zero shard folds.
func TestScatterGatherMatchesExecuteProperty(t *testing.T) {
	prop := buildClusterProperty(t)
	for _, n := range []int{1, 2, 3, 8} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			if testing.Short() && n > 2 {
				t.Skip("short mode runs shard counts 1 and 2 only")
			}
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + n)))
			shards := make([]Shard, n)
			locals := make([]*LocalShard, n)
			for i := range shards {
				s, err := NewLocalShard(nil, live.Options{BucketWidth: 7 * 24 * time.Hour})
				if err != nil {
					t.Fatal(err)
				}
				shards[i] = s
				locals[i] = s
			}
			coord, err := NewCoordinator(shards, CoordinatorOptions{BatchSize: 173, QueueDepth: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			for _, batch := range randomBatches(rng, prop.all, 6) {
				for _, tw := range batch {
					if err := coord.Add(tw); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := coord.Flush(); err != nil {
				t.Fatal(err)
			}
			var routed int64
			for _, l := range locals {
				routed += l.Ingested()
			}
			if routed != int64(len(prop.all)) {
				t.Fatalf("routed %d of %d records into shard rings", routed, len(prop.all))
			}

			for ri, req := range prop.reqs {
				res, cached, err := coord.Query(req)
				if refErr := prop.refErr[ri]; refErr != nil {
					// Degenerate windows fail identically: the same
					// sentinel for empty datasets, and the same assembly
					// error otherwise (shared core.AssembleFolded path).
					if errors.Is(refErr, core.ErrEmptyDataset) {
						if !errors.Is(err, core.ErrEmptyDataset) {
							t.Fatalf("req %d (%s): cluster err = %v, want ErrEmptyDataset", ri, req.Key(), err)
						}
					} else if err == nil || err.Error() != refErr.Error() {
						t.Fatalf("req %d (%s): cluster err = %v, want %v", ri, req.Key(), err, refErr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("req %d (%s): cluster query: %v", ri, req.Key(), err)
				}
				if cached {
					t.Fatalf("req %d (%s): first query reported cached", ri, req.Key())
				}
				if !testx.ResultsBitEqual(res, prop.refs[ri]) {
					t.Fatalf("req %d (%s): %d-shard scatter-gather diverges from single-node execute", ri, req.Key(), n)
				}
			}

			// Warm repeats: every successful request hits the snapshot
			// cache, with zero further shard folds and zero partial
			// rebuilds — only the cheap coverage probes run.
			fetches := coord.PartialFetches()
			builds := int64(0)
			for _, l := range locals {
				builds += l.Builds()
			}
			for ri, req := range prop.reqs {
				if prop.refErr[ri] != nil {
					continue
				}
				res, cached, err := coord.Query(req)
				if err != nil || !cached {
					t.Fatalf("req %d (%s): warm repeat cached=%v err=%v", ri, req.Key(), cached, err)
				}
				if !testx.ResultsBitEqual(res, prop.refs[ri]) {
					t.Fatalf("req %d (%s): warm repeat diverges", ri, req.Key())
				}
			}
			if got := coord.PartialFetches(); got != fetches {
				t.Fatalf("warm repeats issued %d shard folds, want 0", got-fetches)
			}
			var builds2 int64
			for _, l := range locals {
				builds2 += l.Builds()
			}
			if builds2 != builds {
				t.Fatalf("warm repeats rebuilt %d bucket partials, want 0", builds2-builds)
			}

			// An ingest that lands in covered buckets moves the coverage
			// fingerprint: the full-stream request recomputes (a miss)
			// and again matches a fresh single-node reference.
			extra := tweet.Tweet{ID: 1 << 40, UserID: prop.all[0].UserID, TS: prop.all[0].TS + 1,
				Lat: prop.all[0].Lat, Lon: prop.all[0].Lon}
			if err := coord.Add(extra); err != nil {
				t.Fatal(err)
			}
			if err := coord.Flush(); err != nil {
				t.Fatal(err)
			}
			res, cached, err := coord.Query(prop.reqs[0])
			if err != nil || cached {
				t.Fatalf("post-append query cached=%v err=%v, want fresh compute", cached, err)
			}
			withExtra := append(append([]tweet.Tweet(nil), prop.all...), extra)
			sort.Sort(tweet.ByUserTime(withExtra))
			ref, err := core.NewStudyWithOptions(core.SliceSource(withExtra), core.StudyOptions{Workers: 1}).
				Execute(context.Background(), prop.reqs[0])
			if err != nil {
				t.Fatal(err)
			}
			if !testx.ResultsBitEqual(res, ref) {
				t.Fatal("post-append scatter-gather diverges from single-node execute")
			}
		})
	}
}
