package cluster

import (
	"sort"
	"sync"

	"geomob/internal/wal"
)

// spool is the coordinator's view of its ingest spool: the durable WAL
// (CoordinatorOptions.WALDir) or an in-memory fallback with identical
// semantics minus crash durability. Either way, Append is the ingest
// acknowledgement point and lanes drain PendingForNode until every
// replica has acked.
type spool interface {
	SenderID() string
	Append(slot int, destMask uint64, frame []byte) (uint64, error)
	Ack(seq uint64, node int) error
	AckBatch(seqs []uint64, node int) error
	AckNode(node int) error
	PendingForNode(node int, after uint64, max int) ([]wal.Record, error)
	PendingRowsNode(node int) int64
	PendingRowsSlotNode(node, slot int) int64
	Stats() wal.Stats
	Close() error
}

// memSpool mirrors wal.Spool in memory for coordinators running
// without a WAL directory: same acknowledgement and replay contract,
// no durability across process death.
type memSpool struct {
	sender string

	mu      sync.Mutex
	nextSeq uint64
	recs    map[uint64]*wal.Record
	rowsN   map[int]int64
	rowsSN  map[int]map[int]int64
}

func newMemSpool(sender string) *memSpool {
	return &memSpool{
		sender:  sender,
		nextSeq: 1,
		recs:    map[uint64]*wal.Record{},
		rowsN:   map[int]int64{},
		rowsSN:  map[int]map[int]int64{},
	}
}

func (m *memSpool) SenderID() string { return m.sender }

func (m *memSpool) Append(slot int, destMask uint64, frame []byte) (uint64, error) {
	rows := wal.FrameRows(frame)
	m.mu.Lock()
	defer m.mu.Unlock()
	seq := m.nextSeq
	m.nextSeq++
	m.recs[seq] = &wal.Record{Seq: seq, Slot: slot, Dests: destMask, Rows: rows, Frame: frame}
	for node := 0; destMask != 0; node++ {
		if destMask&1 != 0 {
			m.addRows(node, slot, int64(rows))
		}
		destMask >>= 1
	}
	return seq, nil
}

func (m *memSpool) addRows(node, slot int, delta int64) {
	m.rowsN[node] += delta
	sn := m.rowsSN[node]
	if sn == nil {
		sn = map[int]int64{}
		m.rowsSN[node] = sn
	}
	sn[slot] += delta
	if sn[slot] <= 0 {
		delete(sn, slot)
	}
}

func (m *memSpool) ackLocked(seq uint64, node int) {
	rec := m.recs[seq]
	if rec == nil || rec.Dests&(1<<uint(node)) == 0 {
		return
	}
	rec.Dests &^= 1 << uint(node)
	m.addRows(node, rec.Slot, -int64(rec.Rows))
	if rec.Dests == 0 {
		delete(m.recs, seq)
	}
}

func (m *memSpool) Ack(seq uint64, node int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ackLocked(seq, node)
	return nil
}

func (m *memSpool) AckBatch(seqs []uint64, node int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, seq := range seqs {
		m.ackLocked(seq, node)
	}
	return nil
}

func (m *memSpool) AckNode(node int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for seq, rec := range m.recs {
		if rec.Dests&(1<<uint(node)) != 0 {
			m.ackLocked(seq, node)
		}
	}
	return nil
}

func (m *memSpool) PendingForNode(node int, after uint64, max int) ([]wal.Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []wal.Record
	for seq, rec := range m.recs {
		if seq > after && rec.Dests&(1<<uint(node)) != 0 {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out, nil
}

func (m *memSpool) PendingRowsNode(node int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rowsN[node]
}

func (m *memSpool) PendingRowsSlotNode(node, slot int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sn := m.rowsSN[node]; sn != nil {
		return sn[slot]
	}
	return 0
}

func (m *memSpool) Stats() wal.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := wal.Stats{PendingRecords: len(m.recs), NextSeq: m.nextSeq}
	for _, rec := range m.recs {
		st.PendingRows += int64(rec.Rows)
	}
	return st
}

func (m *memSpool) Close() error { return nil }
