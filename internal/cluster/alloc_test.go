package cluster

import (
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"geomob/internal/live"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// allocCorpus builds a deterministic (user, time)-sorted corpus shaped
// like the ingest benchmarks'.
func allocCorpus(n int) []tweet.Tweet {
	rng := rand.New(rand.NewPCG(7, 8))
	tweets := make([]tweet.Tweet, n)
	ts := int64(1378000000000)
	for i := range tweets {
		ts += int64(rng.IntN(60000))
		tweets[i] = tweet.Tweet{
			ID: int64(i), UserID: int64(i / 20), TS: ts,
			Lat: -35 + rng.Float64()*2, Lon: 150 + rng.Float64()*2,
		}
	}
	return tweets
}

// TestClusterIngestAllocBalance pins the fix for the per-lane
// re-serialisation inefficiency: the coordinator used to rebuild every
// record row-wise for each partition lane, so fanning out over four
// partitions cost ~60% more bytes per record than one. With lanes
// handing pre-built columnar batches to their shards, the per-record
// byte cost must stay flat as partitions grow.
func TestClusterIngestAllocBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow")
	}
	corpus := allocCorpus(20000)
	// One ingest pass, bytes allocated measured via memstats. A warm-up
	// pass per configuration absorbs one-time lazy initialisation (grid
	// resolvers, http transports) so the reps measure steady state; the
	// minimum over reps discounts GC-timing noise.
	run := func(parts int) (allocated uint64) {
		shards := make([]Shard, parts)
		for k := range shards {
			store, err := tweetdb.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			shard, err := NewLocalShard(store, live.Options{BucketWidth: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			shards[k] = shard
		}
		coord, err := NewCoordinator(shards, CoordinatorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for _, tw := range corpus {
			if err := coord.Add(tw); err != nil {
				t.Fatal(err)
			}
		}
		if err := coord.Flush(); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		if err := coord.Close(); err != nil {
			t.Fatal(err)
		}
		return after.TotalAlloc - before.TotalAlloc
	}
	measure := func(parts int) float64 {
		run(parts) // warm-up
		best := run(parts)
		for rep := 1; rep < 3; rep++ {
			if got := run(parts); got < best {
				best = got
			}
		}
		return float64(best)
	}
	one := measure(1)
	four := measure(4)
	if one == 0 {
		t.Fatal("no allocation measured for partitions=1")
	}
	ratio := four / one
	t.Logf("bytes/op: partitions=1 %.0f, partitions=4 %.0f (ratio %.2f)", one, four, ratio)
	if ratio > 1.6 {
		t.Errorf("partitions=4 allocates %.2fx the bytes of partitions=1; want <= 1.6x", ratio)
	}
}
