package epidemic

import (
	"fmt"
	"math"
	"math/rand/v2"

	"geomob/internal/census"
	"geomob/internal/randx"
)

// SEIRParams extends the SIR parameters with a latent (exposed)
// compartment: S → E at rate Beta·S·I/N, E → I at rate Sigma, I → R at
// rate Gamma. With Sigma → ∞ the model degenerates to SIR.
type SEIRParams struct {
	Params
	Sigma float64 // incubation rate per day (mean latent period = 1/Sigma)
}

// DefaultSEIRParams models an influenza-like pathogen with a two-day
// latent period on top of the default SIR parameters.
func DefaultSEIRParams() SEIRParams {
	return SEIRParams{Params: DefaultParams(), Sigma: 0.5}
}

// Validate reports the first invalid parameter.
func (p SEIRParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.Sigma <= 0 {
		return fmt.Errorf("epidemic: Sigma must be positive, got %v", p.Sigma)
	}
	return nil
}

// SEIRSnapshot is the SEIR state at one time point.
type SEIRSnapshot struct {
	Day float64
	S   []float64
	E   []float64
	I   []float64
	R   []float64
}

// TotalI returns the total infectious population.
func (s SEIRSnapshot) TotalI() float64 {
	var t float64
	for _, v := range s.I {
		t += v
	}
	return t
}

// SEIRResult is a complete SEIR simulation trace.
type SEIRResult struct {
	Areas     []census.Area
	Series    []SEIRSnapshot
	PeakDay   float64
	PeakI     float64
	AttackPct float64
}

// SimulateSEIR runs deterministic SEIR metapopulation dynamics, coupling
// patches through the row-normalised flow matrix exactly as Simulate does.
// The latent compartment delays spatial spread relative to SIR, which is
// the behaviour epidemic forecasting needs for pathogens with incubation.
func SimulateSEIR(areas []census.Area, flows [][]float64, seedArea int, seedCases float64, p SEIRParams) (*SEIRResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w, N, err := buildCoupling(areas, flows, p.MobilityScale)
	if err != nil {
		return nil, err
	}
	n := len(areas)
	if seedArea < 0 || seedArea >= n {
		return nil, fmt.Errorf("epidemic: seed area %d out of range", seedArea)
	}
	if seedCases <= 0 {
		return nil, fmt.Errorf("epidemic: seedCases must be positive, got %v", seedCases)
	}
	S := make([]float64, n)
	E := make([]float64, n)
	I := make([]float64, n)
	R := make([]float64, n)
	copy(S, N)
	if seedCases > S[seedArea] {
		seedCases = S[seedArea]
	}
	S[seedArea] -= seedCases
	I[seedArea] += seedCases

	res := &SEIRResult{Areas: areas}
	steps := int(math.Ceil(p.Days / p.DT))
	sampleEvery := int(math.Max(1, math.Round(1/p.DT)))
	dS := make([]float64, n)
	dE := make([]float64, n)
	dI := make([]float64, n)
	dR := make([]float64, n)
	for step := 0; step <= steps; step++ {
		day := float64(step) * p.DT
		if step%sampleEvery == 0 {
			snap := SEIRSnapshot{
				Day: day,
				S:   append([]float64(nil), S...),
				E:   append([]float64(nil), E...),
				I:   append([]float64(nil), I...),
				R:   append([]float64(nil), R...),
			}
			res.Series = append(res.Series, snap)
			if ti := snap.TotalI(); ti > res.PeakI {
				res.PeakI = ti
				res.PeakDay = day
			}
		}
		if step == steps {
			break
		}
		for i := 0; i < n; i++ {
			if N[i] == 0 {
				dS[i], dE[i], dI[i], dR[i] = 0, 0, 0, 0
				continue
			}
			inf := p.Beta * S[i] * I[i] / N[i]
			act := p.Sigma * E[i]
			rec := p.Gamma * I[i]
			dS[i] = -inf
			dE[i] = inf - act
			dI[i] = act - rec
			dR[i] = rec
		}
		// Both exposed and infectious individuals travel.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || w[i][j] == 0 {
					continue
				}
				mi := w[i][j] * I[i]
				me := w[i][j] * E[i]
				dI[i] -= mi
				dI[j] += mi
				dE[i] -= me
				dE[j] += me
			}
		}
		for i := 0; i < n; i++ {
			S[i] += dS[i] * p.DT
			E[i] += dE[i] * p.DT
			I[i] += dI[i] * p.DT
			R[i] += dR[i] * p.DT
			if S[i] < 0 {
				S[i] = 0
			}
			if E[i] < 0 {
				E[i] = 0
			}
			if I[i] < 0 {
				I[i] = 0
			}
		}
	}
	var totalN, totalAffected float64
	for i := 0; i < n; i++ {
		totalN += N[i]
		totalAffected += E[i] + I[i] + R[i]
	}
	if totalN > 0 {
		res.AttackPct = 100 * totalAffected / totalN
	}
	return res, nil
}

// buildCoupling row-normalises the flow matrix into travel shares scaled
// by the coupling strength, and returns the patch populations.
func buildCoupling(areas []census.Area, flows [][]float64, scale float64) (w [][]float64, pops []float64, err error) {
	n := len(areas)
	if n == 0 {
		return nil, nil, fmt.Errorf("epidemic: no areas")
	}
	if len(flows) != n {
		return nil, nil, fmt.Errorf("epidemic: flow matrix has %d rows for %d areas", len(flows), n)
	}
	w = make([][]float64, n)
	for i := 0; i < n; i++ {
		if len(flows[i]) != n {
			return nil, nil, fmt.Errorf("epidemic: flow row %d has %d columns, want %d", i, len(flows[i]), n)
		}
		w[i] = make([]float64, n)
		var row float64
		for j := 0; j < n; j++ {
			if i != j {
				if flows[i][j] < 0 {
					return nil, nil, fmt.Errorf("epidemic: negative flow at (%d,%d)", i, j)
				}
				row += flows[i][j]
			}
		}
		if row == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if i != j {
				w[i][j] = scale * flows[i][j] / row
			}
		}
	}
	pops = make([]float64, n)
	for i, a := range areas {
		pops[i] = float64(a.Population)
	}
	return w, pops, nil
}

// StochasticResult summarises an ensemble of stochastic SIR runs.
type StochasticResult struct {
	Runs         int
	ExtinctRuns  int       // runs where the outbreak died before 1% attack
	PeakDays     []float64 // per-run national peak day (non-extinct runs)
	AttackPcts   []float64 // per-run final attack percentage
	MeanPeakDay  float64
	MeanAttack   float64
	ExtinctShare float64
}

// SimulateStochastic runs an ensemble of discrete-state stochastic SIR
// simulations (binomial-approximated by Poisson draws) over the same
// coupling as Simulate. Stochasticity matters for small seeds: outbreaks
// can go extinct by chance, which the deterministic model cannot show.
func SimulateStochastic(areas []census.Area, flows [][]float64, seedArea int, seedCases int, p Params, runs int, seed1, seed2 uint64) (*StochasticResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if runs < 1 {
		return nil, fmt.Errorf("epidemic: runs must be >= 1, got %d", runs)
	}
	if seedCases < 1 {
		return nil, fmt.Errorf("epidemic: seedCases must be >= 1, got %d", seedCases)
	}
	w, N, err := buildCoupling(areas, flows, p.MobilityScale)
	if err != nil {
		return nil, err
	}
	n := len(areas)
	if seedArea < 0 || seedArea >= n {
		return nil, fmt.Errorf("epidemic: seed area %d out of range", seedArea)
	}
	rng := randx.New(seed1, seed2)
	res := &StochasticResult{Runs: runs}
	var totalN float64
	for _, v := range N {
		totalN += v
	}
	for run := 0; run < runs; run++ {
		attack, peakDay := stochasticRun(rng, w, N, seedArea, seedCases, p)
		attackPct := 100 * attack / totalN
		res.AttackPcts = append(res.AttackPcts, attackPct)
		if attackPct < 1 {
			res.ExtinctRuns++
		} else {
			res.PeakDays = append(res.PeakDays, peakDay)
		}
	}
	res.ExtinctShare = float64(res.ExtinctRuns) / float64(runs)
	if len(res.PeakDays) > 0 {
		var s float64
		for _, v := range res.PeakDays {
			s += v
		}
		res.MeanPeakDay = s / float64(len(res.PeakDays))
	}
	var s float64
	for _, v := range res.AttackPcts {
		s += v
	}
	res.MeanAttack = s / float64(runs)
	return res, nil
}

// stochasticRun executes one discrete stochastic trajectory and returns
// the final affected count and the national peak day.
func stochasticRun(rng *rand.Rand, w [][]float64, N []float64, seedArea, seedCases int, p Params) (attack, peakDay float64) {
	n := len(N)
	S := make([]int, n)
	I := make([]int, n)
	R := make([]int, n)
	for i := range N {
		S[i] = int(N[i])
	}
	if seedCases > S[seedArea] {
		seedCases = S[seedArea]
	}
	S[seedArea] -= seedCases
	I[seedArea] = seedCases

	steps := int(math.Ceil(p.Days / p.DT))
	var peakI int
	for step := 0; step <= steps; step++ {
		day := float64(step) * p.DT
		var totalI int
		for _, v := range I {
			totalI += v
		}
		if totalI > peakI {
			peakI = totalI
			peakDay = day
		}
		if totalI == 0 || step == steps {
			break
		}
		// Local transitions: Poisson-approximated binomial draws, capped at
		// compartment occupancy.
		newInf := make([]int, n)
		newRec := make([]int, n)
		for i := 0; i < n; i++ {
			if N[i] == 0 || I[i] == 0 {
				continue
			}
			lamInf := p.Beta * float64(S[i]) * float64(I[i]) / N[i] * p.DT
			lamRec := p.Gamma * float64(I[i]) * p.DT
			ni := randx.Poisson(rng, lamInf)
			if ni > S[i] {
				ni = S[i]
			}
			nr := randx.Poisson(rng, lamRec)
			if nr > I[i] {
				nr = I[i]
			}
			newInf[i], newRec[i] = ni, nr
		}
		// Travel of infectious individuals.
		move := make([]int, n)
		for i := 0; i < n; i++ {
			if I[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || w[i][j] == 0 {
					continue
				}
				m := randx.Poisson(rng, w[i][j]*float64(I[i])*p.DT)
				if m > I[i]+move[i] {
					m = I[i] + move[i]
				}
				move[i] -= m
				move[j] += m
			}
		}
		for i := 0; i < n; i++ {
			S[i] -= newInf[i]
			I[i] += newInf[i] - newRec[i] + move[i]
			R[i] += newRec[i]
			if I[i] < 0 {
				I[i] = 0
			}
		}
	}
	var affected float64
	for i := 0; i < n; i++ {
		affected += float64(I[i] + R[i])
	}
	return affected, peakDay
}
