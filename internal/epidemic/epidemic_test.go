package epidemic

import (
	"math"
	"testing"

	"geomob/internal/census"
)

// testWorld returns the national areas and a gravity-shaped flow matrix.
func testWorld(t *testing.T) ([]census.Area, [][]float64) {
	t.Helper()
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		t.Fatal(err)
	}
	n := len(rs.Areas)
	flows := make([][]float64, n)
	for i := range flows {
		flows[i] = make([]float64, n)
		for j := range flows[i] {
			if i != j {
				// Simple population-product flows; exact shape is irrelevant
				// to the dynamics invariants under test.
				flows[i][j] = float64(rs.Areas[i].Population) * float64(rs.Areas[j].Population) / 1e9
			}
		}
	}
	return rs.Areas, flows
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{Beta: 0, Gamma: 1, MobilityScale: 0.1, DT: 0.5, Days: 10},
		{Beta: 1, Gamma: 0, MobilityScale: 0.1, DT: 0.5, Days: 10},
		{Beta: 1, Gamma: 1, MobilityScale: -0.1, DT: 0.5, Days: 10},
		{Beta: 1, Gamma: 1, MobilityScale: 2, DT: 0.5, Days: 10},
		{Beta: 1, Gamma: 1, MobilityScale: 0.1, DT: 0, Days: 10},
		{Beta: 1, Gamma: 1, MobilityScale: 0.1, DT: 2, Days: 10},
		{Beta: 1, Gamma: 1, MobilityScale: 0.1, DT: 0.5, Days: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should be invalid", i)
		}
	}
	if r0 := DefaultParams().R0(); math.Abs(r0-1.8) > 1e-9 {
		t.Errorf("default R0 = %v, want 1.8", r0)
	}
}

func TestSimulateValidation(t *testing.T) {
	areas, flows := testWorld(t)
	p := DefaultParams()
	if _, err := Simulate(nil, nil, 0, 1, p); err == nil {
		t.Error("no areas should fail")
	}
	if _, err := Simulate(areas, flows[:3], 0, 1, p); err == nil {
		t.Error("flow shape mismatch should fail")
	}
	if _, err := Simulate(areas, flows, -1, 1, p); err == nil {
		t.Error("bad seed area should fail")
	}
	if _, err := Simulate(areas, flows, 0, 0, p); err == nil {
		t.Error("zero seed cases should fail")
	}
	neg := make([][]float64, len(areas))
	for i := range neg {
		neg[i] = make([]float64, len(areas))
	}
	neg[0][1] = -5
	if _, err := Simulate(areas, neg, 0, 1, p); err == nil {
		t.Error("negative flows should fail")
	}
}

func TestEpidemicSpreadsFromSeed(t *testing.T) {
	areas, flows := testWorld(t)
	res, err := Simulate(areas, flows, 0, 100, DefaultParams()) // seed Sydney
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakI <= 100 {
		t.Errorf("epidemic never grew: peak %v", res.PeakI)
	}
	if res.PeakDay <= 0 || res.PeakDay >= 180 {
		t.Errorf("peak day %v outside horizon", res.PeakDay)
	}
	// With R0=1.8 the final attack rate must be substantial but below 100%.
	if res.AttackPct < 20 || res.AttackPct > 95 {
		t.Errorf("attack rate %.1f%% implausible for R0=1.8", res.AttackPct)
	}
	// Every patch must eventually see cases (the flow matrix is complete).
	for i, day := range res.ArrivalDay {
		if day < 0 {
			t.Errorf("patch %s never reached the arrival threshold", areas[i].Name)
		}
	}
	// The seed patch is hit first.
	for i := 1; i < len(res.ArrivalDay); i++ {
		if res.ArrivalDay[i] < res.ArrivalDay[0] {
			t.Errorf("patch %d arrived before the seed", i)
		}
	}
}

func TestSubcriticalEpidemicDies(t *testing.T) {
	areas, flows := testWorld(t)
	p := DefaultParams()
	p.Beta = 0.1 // R0 = 0.4 < 1
	res, err := Simulate(areas, flows, 0, 1000, p)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Series[len(res.Series)-1]
	if last.TotalI() > 10 {
		t.Errorf("subcritical epidemic still has %v infectious", last.TotalI())
	}
	if res.AttackPct > 1 {
		t.Errorf("subcritical attack rate %.2f%% too high", res.AttackPct)
	}
}

func TestIsolationBlocksSpread(t *testing.T) {
	areas, _ := testWorld(t)
	// Zero mobility: the epidemic must stay in the seed patch.
	zero := make([][]float64, len(areas))
	for i := range zero {
		zero[i] = make([]float64, len(areas))
	}
	res, err := Simulate(areas, zero, 0, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.ArrivalDay); i++ {
		if res.ArrivalDay[i] >= 0 {
			t.Errorf("patch %d infected despite zero mobility", i)
		}
	}
	if res.ArrivalDay[0] < 0 {
		t.Error("seed patch not infected")
	}
}

func TestInfectiousMassConservedByCoupling(t *testing.T) {
	// With recovery disabled (Gamma→0 not allowed; use tiny Gamma and Beta=Gamma
	// so net local growth is small), total S+I+R per run must stay close to
	// total N: the coupling only moves I between patches.
	areas, flows := testWorld(t)
	p := Params{Beta: 0.3, Gamma: 0.3, MobilityScale: 0.05, DT: 0.25, Days: 30}
	res, err := Simulate(areas, flows, 0, 1000, p)
	if err != nil {
		t.Fatal(err)
	}
	var totalN float64
	for _, a := range areas {
		totalN += float64(a.Population)
	}
	for _, snap := range res.Series {
		var sum float64
		for i := range snap.S {
			sum += snap.S[i] + snap.I[i] + snap.R[i]
		}
		if math.Abs(sum-totalN)/totalN > 1e-6 {
			t.Fatalf("day %v: population drifted to %v (want %v)", snap.Day, sum, totalN)
		}
	}
}

func TestMoreMobilityFasterSpread(t *testing.T) {
	areas, flows := testWorld(t)
	slow := DefaultParams()
	slow.MobilityScale = 0.001
	fast := DefaultParams()
	fast.MobilityScale = 0.05
	resSlow, err := Simulate(areas, flows, 0, 100, slow)
	if err != nil {
		t.Fatal(err)
	}
	resFast, err := Simulate(areas, flows, 0, 100, fast)
	if err != nil {
		t.Fatal(err)
	}
	// Compare arrival at the most remote significant city (Perth).
	perth := -1
	for i, a := range areas {
		if a.Name == "Perth" {
			perth = i
		}
	}
	if perth < 0 {
		t.Fatal("no Perth")
	}
	if resFast.ArrivalDay[perth] >= resSlow.ArrivalDay[perth] {
		t.Errorf("higher mobility should reach Perth sooner: fast=%v slow=%v",
			resFast.ArrivalDay[perth], resSlow.ArrivalDay[perth])
	}
}

func TestSeriesSampledDaily(t *testing.T) {
	areas, flows := testWorld(t)
	p := DefaultParams()
	p.Days = 10
	res, err := Simulate(areas, flows, 0, 10, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 11 { // day 0..10 inclusive
		t.Errorf("got %d snapshots, want 11", len(res.Series))
	}
	for i, snap := range res.Series {
		if math.Abs(snap.Day-float64(i)) > 1e-9 {
			t.Errorf("snapshot %d at day %v", i, snap.Day)
		}
	}
}
