package epidemic

import (
	"math"
	"testing"
)

func TestSEIRParamsValidate(t *testing.T) {
	if err := DefaultSEIRParams().Validate(); err != nil {
		t.Fatalf("default SEIR params invalid: %v", err)
	}
	bad := DefaultSEIRParams()
	bad.Sigma = 0
	if err := bad.Validate(); err == nil {
		t.Error("Sigma=0 should fail")
	}
	bad = DefaultSEIRParams()
	bad.Beta = -1
	if err := bad.Validate(); err == nil {
		t.Error("inherited SIR validation should fail")
	}
}

func TestSEIRSpreadsSlowerThanSIR(t *testing.T) {
	areas, flows := testWorld(t)
	sir, err := Simulate(areas, flows, 0, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	seir, err := SimulateSEIR(areas, flows, 0, 100, DefaultSEIRParams())
	if err != nil {
		t.Fatal(err)
	}
	if seir.PeakI <= 0 {
		t.Fatal("SEIR epidemic never grew")
	}
	// The latent period must delay the national peak.
	if seir.PeakDay <= sir.PeakDay {
		t.Errorf("SEIR peak day %v should be later than SIR %v", seir.PeakDay, sir.PeakDay)
	}
}

func TestSEIRConservation(t *testing.T) {
	areas, flows := testWorld(t)
	res, err := SimulateSEIR(areas, flows, 0, 1000, DefaultSEIRParams())
	if err != nil {
		t.Fatal(err)
	}
	var totalN float64
	for _, a := range areas {
		totalN += float64(a.Population)
	}
	for _, snap := range res.Series {
		var sum float64
		for i := range snap.S {
			sum += snap.S[i] + snap.E[i] + snap.I[i] + snap.R[i]
		}
		if math.Abs(sum-totalN)/totalN > 1e-6 {
			t.Fatalf("day %v: population drifted to %v (want %v)", snap.Day, sum, totalN)
		}
	}
	if res.AttackPct <= 0 || res.AttackPct > 100 {
		t.Errorf("attack rate %v out of range", res.AttackPct)
	}
}

func TestSEIRValidation(t *testing.T) {
	areas, flows := testWorld(t)
	p := DefaultSEIRParams()
	if _, err := SimulateSEIR(nil, nil, 0, 1, p); err == nil {
		t.Error("no areas should fail")
	}
	if _, err := SimulateSEIR(areas, flows, -1, 1, p); err == nil {
		t.Error("bad seed area should fail")
	}
	if _, err := SimulateSEIR(areas, flows, 0, 0, p); err == nil {
		t.Error("zero seed should fail")
	}
}

func TestStochasticEnsemble(t *testing.T) {
	areas, flows := testWorld(t)
	p := DefaultParams()
	p.Days = 120
	res, err := SimulateStochastic(areas, flows, 0, 5, p, 30, 11, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 30 || len(res.AttackPcts) != 30 {
		t.Fatalf("bookkeeping: %+v", res)
	}
	if res.ExtinctRuns+len(res.PeakDays) != res.Runs {
		t.Errorf("extinct (%d) + established (%d) != runs (%d)",
			res.ExtinctRuns, len(res.PeakDays), res.Runs)
	}
	// With a 5-case seed and R0=1.8 some runs establish; the mean attack
	// over established runs should be substantial.
	if res.MeanAttack <= 0 {
		t.Error("no attack at all across the ensemble")
	}
	for _, a := range res.AttackPcts {
		if a < 0 || a > 100 {
			t.Fatalf("attack %v out of range", a)
		}
	}
}

func TestStochasticSmallSeedCanGoExtinct(t *testing.T) {
	areas, flows := testWorld(t)
	p := DefaultParams()
	p.Days = 60
	// Seed a single case: with R0=1.8 the branching-process extinction
	// probability is roughly 1/R0 ≈ 0.56, so a 40-run ensemble virtually
	// surely contains extinctions (and, with high probability, at least
	// one established run).
	res, err := SimulateStochastic(areas, flows, 0, 1, p, 40, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtinctRuns == 0 {
		t.Error("single-case seeds should sometimes go extinct")
	}
	if res.ExtinctShare < 0.2 || res.ExtinctShare > 0.95 {
		t.Errorf("extinction share %v far from the ~1/R0 regime", res.ExtinctShare)
	}
}

func TestStochasticDeterministicGivenSeed(t *testing.T) {
	areas, flows := testWorld(t)
	p := DefaultParams()
	p.Days = 40
	a, err := SimulateStochastic(areas, flows, 0, 3, p, 5, 21, 22)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateStochastic(areas, flows, 0, 3, p, 5, 21, 22)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.AttackPcts {
		if a.AttackPcts[i] != b.AttackPcts[i] {
			t.Fatalf("run %d differs: %v vs %v", i, a.AttackPcts[i], b.AttackPcts[i])
		}
	}
}

func TestStochasticValidation(t *testing.T) {
	areas, flows := testWorld(t)
	p := DefaultParams()
	if _, err := SimulateStochastic(areas, flows, 0, 0, p, 5, 1, 2); err == nil {
		t.Error("zero seed cases should fail")
	}
	if _, err := SimulateStochastic(areas, flows, 0, 1, p, 0, 1, 2); err == nil {
		t.Error("zero runs should fail")
	}
	if _, err := SimulateStochastic(areas, flows, 99, 1, p, 5, 1, 2); err == nil {
		t.Error("bad seed area should fail")
	}
}
