// Package epidemic implements the paper's stated goal (§I, §V): a
// metapopulation disease-spread simulation driven by the mobility flows
// estimated from geo-tagged tweets. Each census area is a patch running
// SIR dynamics; infections travel between patches along the (row-
// normalised) mobility matrix, following the classic multiscale
// mobility-network formulation of Balcan et al. (the paper's ref. [1]).
package epidemic

import (
	"fmt"
	"math"

	"geomob/internal/census"
)

// Params are the SIR epidemic parameters.
type Params struct {
	Beta  float64 // transmission rate per day (S→I pressure)
	Gamma float64 // recovery rate per day (I→R); R0 = Beta/Gamma
	// MobilityScale converts flow counts into per-capita daily travel
	// probability mass. The mobility matrix is row-normalised and then
	// multiplied by this coupling strength.
	MobilityScale float64
	// DT is the integration step in days.
	DT float64
	// Days is the simulated horizon.
	Days float64
}

// DefaultParams models an influenza-like pathogen (R0 = 1.8) with 1% of
// each patch travelling per day, integrated at 6-hour steps for 180 days.
func DefaultParams() Params {
	return Params{Beta: 0.45, Gamma: 0.25, MobilityScale: 0.01, DT: 0.25, Days: 180}
}

// Validate reports the first invalid parameter.
func (p Params) Validate() error {
	switch {
	case p.Beta <= 0:
		return fmt.Errorf("epidemic: Beta must be positive, got %v", p.Beta)
	case p.Gamma <= 0:
		return fmt.Errorf("epidemic: Gamma must be positive, got %v", p.Gamma)
	case p.MobilityScale < 0 || p.MobilityScale > 1:
		return fmt.Errorf("epidemic: MobilityScale must lie in [0,1], got %v", p.MobilityScale)
	case p.DT <= 0 || p.DT > 1:
		return fmt.Errorf("epidemic: DT must lie in (0,1] days, got %v", p.DT)
	case p.Days <= 0:
		return fmt.Errorf("epidemic: Days must be positive, got %v", p.Days)
	}
	return nil
}

// R0 returns the basic reproduction number Beta/Gamma.
func (p Params) R0() float64 { return p.Beta / p.Gamma }

// Snapshot is the epidemic state at one time point.
type Snapshot struct {
	Day float64
	S   []float64 // susceptible per patch
	I   []float64 // infectious per patch
	R   []float64 // recovered per patch
}

// TotalI returns the total infectious population.
func (s Snapshot) TotalI() float64 {
	var t float64
	for _, v := range s.I {
		t += v
	}
	return t
}

// Result is a complete simulation trace.
type Result struct {
	Areas     []census.Area
	Series    []Snapshot // sampled once per simulated day
	PeakDay   float64    // day of the national infection peak
	PeakI     float64    // infectious count at the peak
	AttackPct float64    // final share of the population ever infected
	// ArrivalDay[i] is the first day patch i exceeds one infectious case
	// per 100k residents (-1 when never reached).
	ArrivalDay []float64
}

// Simulate runs deterministic SIR metapopulation dynamics over the areas,
// coupling patches through the given flow matrix (typically the Twitter-
// extracted or model-predicted OD matrix). seedArea receives seedCases
// initial infections.
func Simulate(areas []census.Area, flows [][]float64, seedArea int, seedCases float64, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(areas)
	if n == 0 {
		return nil, fmt.Errorf("epidemic: no areas")
	}
	if len(flows) != n {
		return nil, fmt.Errorf("epidemic: flow matrix has %d rows for %d areas", len(flows), n)
	}
	for i := range flows {
		if len(flows[i]) != n {
			return nil, fmt.Errorf("epidemic: flow row %d has %d columns, want %d", i, len(flows[i]), n)
		}
	}
	if seedArea < 0 || seedArea >= n {
		return nil, fmt.Errorf("epidemic: seed area %d out of range", seedArea)
	}
	if seedCases <= 0 {
		return nil, fmt.Errorf("epidemic: seedCases must be positive, got %v", seedCases)
	}

	// Row-normalised coupling matrix: w[i][j] is the share of patch i's
	// travel going to patch j, scaled by MobilityScale.
	w := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, n)
		var row float64
		for j := 0; j < n; j++ {
			if i != j {
				if flows[i][j] < 0 {
					return nil, fmt.Errorf("epidemic: negative flow at (%d,%d)", i, j)
				}
				row += flows[i][j]
			}
		}
		if row == 0 {
			continue // isolated patch
		}
		for j := 0; j < n; j++ {
			if i != j {
				w[i][j] = p.MobilityScale * flows[i][j] / row
			}
		}
	}

	S := make([]float64, n)
	I := make([]float64, n)
	R := make([]float64, n)
	N := make([]float64, n)
	for i, a := range areas {
		N[i] = float64(a.Population)
		S[i] = N[i]
	}
	if seedCases > S[seedArea] {
		seedCases = S[seedArea]
	}
	S[seedArea] -= seedCases
	I[seedArea] += seedCases

	res := &Result{Areas: areas, ArrivalDay: make([]float64, n)}
	for i := range res.ArrivalDay {
		res.ArrivalDay[i] = -1
	}

	steps := int(math.Ceil(p.Days / p.DT))
	sampleEvery := int(math.Max(1, math.Round(1/p.DT)))
	dS := make([]float64, n)
	dI := make([]float64, n)
	dR := make([]float64, n)
	for step := 0; step <= steps; step++ {
		day := float64(step) * p.DT
		// Sample once per day (and at t=0).
		if step%sampleEvery == 0 {
			snap := Snapshot{
				Day: day,
				S:   append([]float64(nil), S...),
				I:   append([]float64(nil), I...),
				R:   append([]float64(nil), R...),
			}
			res.Series = append(res.Series, snap)
			if ti := snap.TotalI(); ti > res.PeakI {
				res.PeakI = ti
				res.PeakDay = day
			}
		}
		for i := 0; i < n; i++ {
			if res.ArrivalDay[i] < 0 && N[i] > 0 && I[i]/N[i] > 1e-5 {
				res.ArrivalDay[i] = day
			}
		}
		if step == steps {
			break
		}
		// Local SIR dynamics.
		for i := 0; i < n; i++ {
			if N[i] == 0 {
				dS[i], dI[i], dR[i] = 0, 0, 0
				continue
			}
			inf := p.Beta * S[i] * I[i] / N[i]
			rec := p.Gamma * I[i]
			dS[i] = -inf
			dI[i] = inf - rec
			dR[i] = rec
		}
		// Mobility coupling: infectious pressure travels along w.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || w[i][j] == 0 {
					continue
				}
				move := w[i][j] * I[i]
				dI[i] -= move
				dI[j] += move
			}
		}
		for i := 0; i < n; i++ {
			S[i] += dS[i] * p.DT
			I[i] += dI[i] * p.DT
			R[i] += dR[i] * p.DT
			if S[i] < 0 {
				S[i] = 0
			}
			if I[i] < 0 {
				I[i] = 0
			}
		}
	}
	var totalN, totalR float64
	for i := 0; i < n; i++ {
		totalN += N[i]
		totalR += R[i] + I[i]
	}
	if totalN > 0 {
		res.AttackPct = 100 * totalR / totalN
	}
	return res, nil
}
