// Package index provides in-memory spatial indexes over geographic points:
// a uniform grid hash for radius queries against large point sets, and a
// k-d tree for nearest-neighbour lookups against small static sets (the
// census areas). Both verify candidates with exact haversine distances, so
// query results are exact; the structures only prune.
package index

import (
	"fmt"
	"math"
	"sort"

	"geomob/internal/geo"
)

// Entry is one indexed point with an opaque identifier.
type Entry struct {
	ID int64
	P  geo.Point
}

// Grid is a uniform latitude/longitude grid hash. Cell size is chosen from
// the expected query radius: cells of roughly the query radius make a
// radius query touch at most ~9 cells at mid latitudes.
type Grid struct {
	cellDeg float64
	cells   map[[2]int32][]Entry
	n       int
}

// NewGrid creates a grid whose cells are cellMeters wide in the north–south
// direction (east–west width shrinks with latitude, which only makes
// pruning finer).
func NewGrid(cellMeters float64) (*Grid, error) {
	if cellMeters <= 0 {
		return nil, fmt.Errorf("index: grid cell size must be positive, got %v m", cellMeters)
	}
	return &Grid{
		cellDeg: cellMeters / geo.MetersPerDegreeLat,
		cells:   map[[2]int32][]Entry{},
	}, nil
}

func (g *Grid) key(p geo.Point) [2]int32 {
	return [2]int32{
		int32(math.Floor(p.Lat / g.cellDeg)),
		int32(math.Floor(p.Lon / g.cellDeg)),
	}
}

// Insert adds an entry to the grid.
func (g *Grid) Insert(e Entry) {
	k := g.key(e.P)
	g.cells[k] = append(g.cells[k], e)
	g.n++
}

// Len returns the number of indexed entries.
func (g *Grid) Len() int { return g.n }

// lonSpans returns the longitude intervals (in degrees, within [-180, 180])
// covering [p.Lon-dLon, p.Lon+dLon] with antimeridian wrap-around: a query
// disc reaching past ±180° continues on the far side, so cell keys derived
// from raw insert longitudes must be probed on both sides of the seam.
func lonSpans(lon, dLon float64) [2][2]float64 {
	if dLon >= 180 {
		return [2][2]float64{{-180, 180}, {1, -1}} // full circle, second span empty
	}
	lo, hi := lon-dLon, lon+dLon
	switch {
	case lo < -180:
		return [2][2]float64{{-180, hi}, {lo + 360, 180}}
	case hi > 180:
		return [2][2]float64{{lo, 180}, {-180, hi - 360}}
	default:
		return [2][2]float64{{lo, hi}, {1, -1}} // second span empty
	}
}

// eachCandidate visits every entry in the grid cells that can intersect the
// disc of the given radius around p, including cells reached by wrapping the
// longitude range across the antimeridian.
func (g *Grid) eachCandidate(p geo.Point, radius float64, fn func(Entry)) {
	dLat := radius / geo.MetersPerDegreeLat
	loLat := int32(math.Floor((p.Lat - dLat) / g.cellDeg))
	hiLat := int32(math.Floor((p.Lat + dLat) / g.cellDeg))
	mpl := geo.MetersPerDegreeLon(p.Lat)
	var dLon float64
	if mpl < 1 { // polar degenerate case: cover all longitudes
		dLon = 360
	} else {
		dLon = radius / mpl
	}
	for _, span := range lonSpans(p.Lon, dLon) {
		if span[0] > span[1] {
			continue
		}
		loLon := int32(math.Floor(span[0] / g.cellDeg))
		hiLon := int32(math.Floor(span[1] / g.cellDeg))
		for la := loLat; la <= hiLat; la++ {
			for lo := loLon; lo <= hiLon; lo++ {
				for _, e := range g.cells[[2]int32{la, lo}] {
					fn(e)
				}
			}
		}
	}
}

// Radius returns all entries within radius metres of p (inclusive), in
// unspecified order. Queries whose bounding box crosses the antimeridian
// wrap correctly.
func (g *Grid) Radius(p geo.Point, radius float64) []Entry {
	if radius < 0 {
		return nil
	}
	var out []Entry
	g.eachCandidate(p, radius, func(e Entry) {
		if geo.Haversine(p, e.P) <= radius {
			out = append(out, e)
		}
	})
	return out
}

// CountRadius returns the number of entries within radius metres of p
// without materialising them.
func (g *Grid) CountRadius(p geo.Point, radius float64) int {
	if radius < 0 {
		return 0
	}
	count := 0
	g.eachCandidate(p, radius, func(e Entry) {
		if geo.Haversine(p, e.P) <= radius {
			count++
		}
	})
	return count
}

// KDTree is a static 2-d tree over entries, built once and queried for
// nearest neighbours and radius sets. Candidates are ranked with exact
// haversine distances during the walk; subtree pruning uses provable lower
// bounds on the great-circle distance (see splitLowerBound). Queries are
// therefore exact.
type KDTree struct {
	nodes    []kdNode
	root     int32
	cosFloor float64 // minimum cosine over all entry latitudes (pruning)
}

type kdNode struct {
	e           Entry
	left, right int32
}

// NewKDTree builds a balanced k-d tree over the entries. It returns an
// error for an empty input.
func NewKDTree(entries []Entry) (*KDTree, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("index: kd-tree requires at least one entry")
	}
	cosFloor := 1.0
	for _, e := range entries {
		if c := math.Cos(e.P.Lat * math.Pi / 180); c < cosFloor {
			cosFloor = c
		}
	}
	t := &KDTree{
		nodes:    make([]kdNode, 0, len(entries)),
		cosFloor: cosFloor,
	}
	if t.cosFloor < 0 {
		t.cosFloor = 0
	}
	work := append([]Entry(nil), entries...)
	t.root = t.build(work, 0)
	return t, nil
}

func (t *KDTree) build(entries []Entry, depth int) int32 {
	if len(entries) == 0 {
		return -1
	}
	axis := depth % 2
	sort.Slice(entries, func(i, j int) bool {
		if axis == 0 {
			return entries[i].P.Lat < entries[j].P.Lat
		}
		return entries[i].P.Lon < entries[j].P.Lon
	})
	mid := len(entries) / 2
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{e: entries[mid]})
	left := t.build(entries[:mid], depth+1)
	right := t.build(entries[mid+1:], depth+1)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// Len returns the number of entries in the tree.
func (t *KDTree) Len() int { return len(t.nodes) }

// nearestFrame is one deferred far subtree of the iterative nearest walk,
// remembered with the provable lower bound that was valid when it was
// deferred (the bound only needs re-checking against the improved best).
type nearestFrame struct {
	node  int32
	depth int32
	bound float64 // lower bound in metres on any entry in the subtree
}

// nearestStackSize bounds the deferred-subtree stack of Nearest. At most
// one frame per tree level is live at any time (frames are pushed in
// strictly increasing depth order and popped deepest-first), and the
// median-split build keeps the tree balanced, so 64 levels cover any
// conceivable entry count.
const nearestStackSize = 64

// Nearest returns the entry closest to p by great-circle distance and that
// distance in metres. The walk ranks candidates with exact haversine
// distances and prunes subtrees via splitLowerBound, so the result is
// exact; the traversal is iterative over a fixed-size stack and performs
// no heap allocations.
func (t *KDTree) Nearest(p geo.Point) (Entry, float64) {
	var stack [nearestStackSize]nearestFrame
	sp := 0
	best := int32(-1)
	bestDist := math.Inf(1)
	node, depth := t.root, int32(0)
	for {
		for node >= 0 {
			n := &t.nodes[node]
			if d := geo.Haversine(p, n.e.P); d < bestDist {
				bestDist = d
				best = node
			}
			axis := int(depth) & 1
			var diff float64
			if axis == 0 {
				diff = p.Lat - n.e.P.Lat
			} else {
				diff = p.Lon - n.e.P.Lon
			}
			near, far := n.left, n.right
			if diff > 0 {
				near, far = far, near
			}
			if far >= 0 {
				if lb := t.splitLowerBound(p, n.e.P, axis); lb < bestDist {
					stack[sp] = nearestFrame{node: far, depth: depth + 1, bound: lb}
					sp++
				}
			}
			node = near
			depth++
		}
		for {
			if sp == 0 {
				return t.nodes[best].e, bestDist
			}
			sp--
			if f := stack[sp]; f.bound < bestDist {
				node, depth = f.node, f.depth
				break
			}
		}
	}
}

// splitLowerBound returns a lower bound in metres on the great-circle
// distance between the query point p and any point beyond the splitting
// plane of the given node axis. For the latitude axis the bound is exact
// (meridian arc). For the longitude axis it follows from the haversine
// identity sin²(d/2R) >= cosφ₁·cosφ₂·sin²(Δλ/2) with cosφ₂ bounded below by
// the tree-wide cosine floor. Longitude splits live on a circle, not a
// line: the far half-plane in raw coordinates is an arc bounded by the
// split on one side and the ±180° seam on the other, and the seam can be
// angularly closer to p than the split is — so the usable gap is the
// minimum of the wrapped gap to the split and the gap to the seam.
func (t *KDTree) splitLowerBound(p geo.Point, split geo.Point, axis int) float64 {
	if axis == 0 {
		return math.Abs(p.Lat-split.Lat) * geo.MetersPerDegreeLat
	}
	dLon := math.Abs(p.Lon - split.Lon)
	if dLon > 180 {
		dLon = 360 - dLon
	}
	if seamGap := 180 - math.Abs(p.Lon); seamGap < dLon {
		dLon = seamGap
	}
	cosP := math.Cos(p.Lat * math.Pi / 180)
	c := cosP * t.cosFloor
	if c <= 0 {
		return 0 // cannot prune through the poles
	}
	s := math.Sqrt(c) * math.Sin(dLon*math.Pi/180/2)
	if s > 1 {
		s = 1
	}
	return 2 * geo.EarthRadius * math.Asin(s)
}

// NearestWithin returns the closest entry to p if it lies within radius
// metres; ok is false when nothing is close enough. This is the primitive
// behind the paper's "search radius ε" area assignment.
func (t *KDTree) NearestWithin(p geo.Point, radius float64) (e Entry, dist float64, ok bool) {
	e, dist = t.Nearest(p)
	if dist <= radius {
		return e, dist, true
	}
	return Entry{}, 0, false
}

// Radius returns all entries within radius metres of p, ordered by
// ascending great-circle distance.
func (t *KDTree) Radius(p geo.Point, radius float64) []Entry {
	if radius < 0 {
		return nil
	}
	type hit struct {
		e Entry
		d float64
	}
	var hits []hit
	var walk func(node int32, depth int)
	walk = func(node int32, depth int) {
		if node < 0 {
			return
		}
		n := t.nodes[node]
		if d := geo.Haversine(p, n.e.P); d <= radius {
			hits = append(hits, hit{n.e, d})
		}
		axis := depth % 2
		var onLeft bool
		if axis == 0 {
			onLeft = p.Lat < n.e.P.Lat
		} else {
			onLeft = p.Lon < n.e.P.Lon
		}
		near, far := n.left, n.right
		if !onLeft {
			near, far = far, near
		}
		walk(near, depth+1)
		if t.splitLowerBound(p, n.e.P, axis) <= radius {
			walk(far, depth+1)
		}
	}
	walk(t.root, 0)
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	out := make([]Entry, len(hits))
	for i, h := range hits {
		out[i] = h.e
	}
	return out
}
