// Package index provides in-memory spatial indexes over geographic points:
// a uniform grid hash for radius queries against large point sets, and a
// k-d tree for nearest-neighbour lookups against small static sets (the
// census areas). Both verify candidates with exact haversine distances, so
// query results are exact; the structures only prune.
package index

import (
	"fmt"
	"math"
	"sort"

	"geomob/internal/geo"
)

// Entry is one indexed point with an opaque identifier.
type Entry struct {
	ID int64
	P  geo.Point
}

// Grid is a uniform latitude/longitude grid hash. Cell size is chosen from
// the expected query radius: cells of roughly the query radius make a
// radius query touch at most ~9 cells at mid latitudes.
type Grid struct {
	cellDeg float64
	cells   map[[2]int32][]Entry
	n       int
}

// NewGrid creates a grid whose cells are cellMeters wide in the north–south
// direction (east–west width shrinks with latitude, which only makes
// pruning finer).
func NewGrid(cellMeters float64) (*Grid, error) {
	if cellMeters <= 0 {
		return nil, fmt.Errorf("index: grid cell size must be positive, got %v m", cellMeters)
	}
	return &Grid{
		cellDeg: cellMeters / geo.MetersPerDegreeLat,
		cells:   map[[2]int32][]Entry{},
	}, nil
}

func (g *Grid) key(p geo.Point) [2]int32 {
	return [2]int32{
		int32(math.Floor(p.Lat / g.cellDeg)),
		int32(math.Floor(p.Lon / g.cellDeg)),
	}
}

// Insert adds an entry to the grid.
func (g *Grid) Insert(e Entry) {
	k := g.key(e.P)
	g.cells[k] = append(g.cells[k], e)
	g.n++
}

// Len returns the number of indexed entries.
func (g *Grid) Len() int { return g.n }

// Radius returns all entries within radius metres of p (inclusive), in
// unspecified order.
func (g *Grid) Radius(p geo.Point, radius float64) []Entry {
	if radius < 0 {
		return nil
	}
	box := geo.BoundAround(p, radius)
	loLat := int32(math.Floor(box.MinLat / g.cellDeg))
	hiLat := int32(math.Floor(box.MaxLat / g.cellDeg))
	loLon := int32(math.Floor(box.MinLon / g.cellDeg))
	hiLon := int32(math.Floor(box.MaxLon / g.cellDeg))
	var out []Entry
	for la := loLat; la <= hiLat; la++ {
		for lo := loLon; lo <= hiLon; lo++ {
			for _, e := range g.cells[[2]int32{la, lo}] {
				if geo.Haversine(p, e.P) <= radius {
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// CountRadius returns the number of entries within radius metres of p
// without materialising them.
func (g *Grid) CountRadius(p geo.Point, radius float64) int {
	if radius < 0 {
		return 0
	}
	box := geo.BoundAround(p, radius)
	loLat := int32(math.Floor(box.MinLat / g.cellDeg))
	hiLat := int32(math.Floor(box.MaxLat / g.cellDeg))
	loLon := int32(math.Floor(box.MinLon / g.cellDeg))
	hiLon := int32(math.Floor(box.MaxLon / g.cellDeg))
	count := 0
	for la := loLat; la <= hiLat; la++ {
		for lo := loLon; lo <= hiLon; lo++ {
			for _, e := range g.cells[[2]int32{la, lo}] {
				if geo.Haversine(p, e.P) <= radius {
					count++
				}
			}
		}
	}
	return count
}

// KDTree is a static 2-d tree over entries, built once and queried for
// nearest neighbours and radius sets. Candidate ranking inside the tree
// walk uses an equirectangular projection at the tree's mean latitude;
// subtree pruning uses provable lower bounds on the great-circle distance
// (see splitLowerBound), and all returned results are verified with exact
// haversine distances. Queries are therefore exact.
type KDTree struct {
	nodes    []kdNode
	root     int32
	cosLat   float64 // cosine at the mean latitude (ranking metric)
	cosFloor float64 // minimum cosine over all entry latitudes (pruning)
}

type kdNode struct {
	e           Entry
	left, right int32
}

// NewKDTree builds a balanced k-d tree over the entries. It returns an
// error for an empty input.
func NewKDTree(entries []Entry) (*KDTree, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("index: kd-tree requires at least one entry")
	}
	var sumLat float64
	cosFloor := 1.0
	for _, e := range entries {
		sumLat += e.P.Lat
		if c := math.Cos(e.P.Lat * math.Pi / 180); c < cosFloor {
			cosFloor = c
		}
	}
	meanLat := sumLat / float64(len(entries))
	t := &KDTree{
		nodes:    make([]kdNode, 0, len(entries)),
		cosLat:   math.Cos(meanLat * math.Pi / 180),
		cosFloor: cosFloor,
	}
	if t.cosLat < 0.05 {
		t.cosLat = 0.05 // keep the ranking projection sane near the poles
	}
	if t.cosFloor < 0 {
		t.cosFloor = 0
	}
	work := append([]Entry(nil), entries...)
	t.root = t.build(work, 0)
	return t, nil
}

func (t *KDTree) build(entries []Entry, depth int) int32 {
	if len(entries) == 0 {
		return -1
	}
	axis := depth % 2
	sort.Slice(entries, func(i, j int) bool {
		if axis == 0 {
			return entries[i].P.Lat < entries[j].P.Lat
		}
		return entries[i].P.Lon < entries[j].P.Lon
	})
	mid := len(entries) / 2
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{e: entries[mid]})
	left := t.build(entries[:mid], depth+1)
	right := t.build(entries[mid+1:], depth+1)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// Len returns the number of entries in the tree.
func (t *KDTree) Len() int { return len(t.nodes) }

// planarDist2 is the squared equirectangular distance in degree² with
// longitude compressed by cos(meanLat).
func (t *KDTree) planarDist2(a, b geo.Point) float64 {
	dLat := a.Lat - b.Lat
	dLon := (a.Lon - b.Lon) * t.cosLat
	return dLat*dLat + dLon*dLon
}

// Nearest returns the entry closest to p by great-circle distance and that
// distance in metres. The tree walk finds the nearest under the projected
// metric; a haversine-verified radius sweep around that candidate then
// resolves any re-ordering the projection could have introduced, so the
// result is exact.
func (t *KDTree) Nearest(p geo.Point) (Entry, float64) {
	best := int32(-1)
	bestDist := math.Inf(1) // squared planar degrees during the walk
	t.nearest(t.root, p, 0, &best, &bestDist)
	e := t.nodes[best].e
	d := geo.Haversine(p, e.P)
	// Refine: any true nearest neighbour must lie within d of p. Sweep with
	// a 10% margin to absorb projection distortion at continental spans.
	for _, cand := range t.Radius(p, d*1.1+1) {
		if cd := geo.Haversine(p, cand.P); cd < d {
			d = cd
			e = cand
		}
	}
	return e, d
}

func (t *KDTree) nearest(node int32, p geo.Point, depth int, best *int32, bestDist2 *float64) {
	if node < 0 {
		return
	}
	n := t.nodes[node]
	if d2 := t.planarDist2(p, n.e.P); d2 < *bestDist2 {
		*bestDist2 = d2
		*best = node
	}
	axis := depth % 2
	var diff float64
	if axis == 0 {
		diff = p.Lat - n.e.P.Lat
	} else {
		diff = (p.Lon - n.e.P.Lon) * t.cosLat
	}
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	t.nearest(near, p, depth+1, best, bestDist2)
	if diff*diff < *bestDist2 {
		t.nearest(far, p, depth+1, best, bestDist2)
	}
}

// splitLowerBound returns a lower bound in metres on the great-circle
// distance between the query point p and any point beyond the splitting
// plane of the given node axis. For the latitude axis the bound is exact
// (meridian arc). For the longitude axis it follows from the haversine
// identity sin²(d/2R) >= cosφ₁·cosφ₂·sin²(Δλ/2) with cosφ₂ bounded below by
// the tree-wide cosine floor.
func (t *KDTree) splitLowerBound(p geo.Point, split geo.Point, axis int) float64 {
	if axis == 0 {
		return math.Abs(p.Lat-split.Lat) * geo.MetersPerDegreeLat
	}
	dLon := math.Abs(p.Lon-split.Lon) * math.Pi / 180
	if dLon > math.Pi {
		dLon = 2*math.Pi - dLon
	}
	cosP := math.Cos(p.Lat * math.Pi / 180)
	c := cosP * t.cosFloor
	if c <= 0 {
		return 0 // cannot prune through the poles
	}
	s := math.Sqrt(c) * math.Sin(dLon/2)
	if s > 1 {
		s = 1
	}
	return 2 * geo.EarthRadius * math.Asin(s)
}

// NearestWithin returns the closest entry to p if it lies within radius
// metres; ok is false when nothing is close enough. This is the primitive
// behind the paper's "search radius ε" area assignment.
func (t *KDTree) NearestWithin(p geo.Point, radius float64) (e Entry, dist float64, ok bool) {
	e, dist = t.Nearest(p)
	if dist <= radius {
		return e, dist, true
	}
	return Entry{}, 0, false
}

// Radius returns all entries within radius metres of p, ordered by
// ascending great-circle distance.
func (t *KDTree) Radius(p geo.Point, radius float64) []Entry {
	if radius < 0 {
		return nil
	}
	type hit struct {
		e Entry
		d float64
	}
	var hits []hit
	var walk func(node int32, depth int)
	walk = func(node int32, depth int) {
		if node < 0 {
			return
		}
		n := t.nodes[node]
		if d := geo.Haversine(p, n.e.P); d <= radius {
			hits = append(hits, hit{n.e, d})
		}
		axis := depth % 2
		var onLeft bool
		if axis == 0 {
			onLeft = p.Lat < n.e.P.Lat
		} else {
			onLeft = p.Lon < n.e.P.Lon
		}
		near, far := n.left, n.right
		if !onLeft {
			near, far = far, near
		}
		walk(near, depth+1)
		if t.splitLowerBound(p, n.e.P, axis) <= radius {
			walk(far, depth+1)
		}
	}
	walk(t.root, 0)
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	out := make([]Entry, len(hits))
	for i, h := range hits {
		out[i] = h.e
	}
	return out
}
