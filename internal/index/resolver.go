package index

// This file implements the grid-resolved nearest-within-radius assignment
// layer (DESIGN.md §6): the paper's "nearest census area within search
// radius ε" rule, precomputed over a uniform grid so the per-point lookup
// is an array index instead of a tree walk. The k-d tree remains the
// construction-time oracle and the exactness reference — every cell is
// either *proved* to have a single possible answer using conservative
// great-circle bounds, or it carries the short list of candidates that a
// query verifies with a few exact haversine distances.

import (
	"fmt"
	"math"

	"geomob/internal/geo"
)

const (
	// resolverCellFraction sizes grid cells relative to the search radius.
	// Smaller cells prove dominance for more of the plane (fewer candidate
	// scans) at the cost of memory and construction time.
	resolverCellFraction = 0.25
	// resolverMaxCells caps the grid size; cells grow uniformly when the
	// band would exceed it. 2^21 int32 cells is 8 MiB.
	resolverMaxCells = 1 << 21
	// resolverBandSlack expands the covered band slightly beyond the exact
	// reach of the search radius, so a point outside the band is *strictly*
	// farther than radius from every entry (the boundary case lands inside
	// the band, where it is answered exactly).
	resolverBandSlack = 1.001
	// resolverCosFloorMin is the minimum usable cos(latitude): closer to
	// the poles the longitude bounds degrade and the resolver falls back to
	// the exact tree for every query instead of risking an unsound grid.
	resolverCosFloorMin = 0.05

	// cellNoEntry marks a cell proved to be beyond the search radius of
	// every entry. Cell values >= 0 are resolved entry slots; values
	// <= cellListBase encode a candidate-list index as cellListBase - v.
	cellNoEntry  = int32(-1)
	cellListBase = int32(-2)
)

// Resolver answers the paper's search-radius area assignment — "the entry
// nearest to p, provided it lies within radius metres" — in O(1) for the
// overwhelming majority of points: a uniform grid over the entries'
// reachable band stores, per cell, either the entry that provably wins
// everywhere in the cell (or that no entry is in reach), or a short
// candidate list verified with exact haversine distances at query time.
// Resolve is allocation-free and exact: it agrees with
// KDTree.NearestWithin on every input.
type Resolver struct {
	tree   *KDTree
	ids    []int64
	pts    []geo.Point
	radius float64

	minLat, maxLat float64
	minLon, maxLon float64
	invCellLat     float64
	invCellLon     float64
	nx, ny         int
	cells          []int32
	candStart      []int32
	cands          []int32

	// degenerate marks configurations where the longitude bounds cannot be
	// made sound (polar bands, radii reaching around the globe, bands
	// crossing the antimeridian): every query falls back to the exact tree.
	degenerate bool

	resolved int // cells proved single-answer, for instrumentation
}

// NewResolver precomputes the assignment grid for the entries at the given
// search radius in metres. Entry IDs must be non-negative (the no-entry
// answer is -1). The entries are also indexed into the internal k-d tree,
// which remains the oracle for ambiguous cells and degenerate geometries.
func NewResolver(entries []Entry, radius float64) (*Resolver, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("index: resolver requires at least one entry")
	}
	if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return nil, fmt.Errorf("index: resolver radius must be finite and non-negative, got %v", radius)
	}
	tree, err := NewKDTree(entries)
	if err != nil {
		return nil, err
	}
	r := &Resolver{
		tree:   tree,
		ids:    make([]int64, len(entries)),
		pts:    make([]geo.Point, len(entries)),
		radius: radius,
	}
	entBox := geo.EmptyBBox()
	for i, e := range entries {
		if e.ID < 0 {
			return nil, fmt.Errorf("index: resolver entry %d has negative ID %d", i, e.ID)
		}
		if !e.P.Valid() {
			return nil, fmt.Errorf("index: resolver entry %d has invalid coordinates %v", i, e.P)
		}
		r.ids[i] = e.ID
		r.pts[i] = e.P
		entBox = entBox.Extend(e.P)
	}
	r.build(entBox)
	return r, nil
}

// build lays out the grid band and classifies every cell. When the
// geometry defeats the longitude bounds it marks the resolver degenerate
// instead — correctness never depends on the grid being buildable.
func (r *Resolver) build(entBox geo.BBox) {
	pad := r.radius * resolverBandSlack
	rDeg := pad / geo.MetersPerDegreeLat
	r.minLat = math.Max(entBox.MinLat-rDeg, -90)
	r.maxLat = math.Min(entBox.MaxLat+rDeg, 90)

	// cosFloor over the whole lat band: the longitude reach of the radius
	// and the cell lower bounds both need it. Near the poles the bounds
	// collapse; fall back to the tree.
	cosFloor := bandCosFloor(r.minLat, r.maxLat)
	if cosFloor < resolverCosFloorMin {
		r.degenerate = true
		return
	}
	// Longitude reach of the padded radius anywhere in the band, from the
	// haversine identity sin²(d/2R) >= cosφ₁·cosφ₂·sin²(Δλ/2): a point
	// within pad metres of an entry differs by at most dLonDeg degrees.
	sinHalf := math.Sin(pad/(2*geo.EarthRadius)) / cosFloor
	if sinHalf >= 1 {
		r.degenerate = true
		return
	}
	dLonDeg := 2 * math.Asin(sinHalf) * 180 / math.Pi
	r.minLon = entBox.MinLon - dLonDeg
	r.maxLon = entBox.MaxLon + dLonDeg
	if r.minLon < -180 || r.maxLon > 180 {
		// The band would cross the antimeridian; the gap arithmetic below
		// assumes it does not. Exactness beats coverage: use the tree.
		r.degenerate = true
		return
	}

	// Cell extents: ~resolverCellFraction of the radius per side, capped
	// at resolverMaxCells total, then stretched to tile the band exactly.
	target := r.radius * resolverCellFraction
	if target <= 0 {
		target = 1 // radius 0: any cell size is sound, resolve by candidates
	}
	cellLat := target / geo.MetersPerDegreeLat
	cellLon := target / (geo.MetersPerDegreeLat * math.Max(cosFloor, resolverCosFloorMin))
	latSpan := r.maxLat - r.minLat
	lonSpan := r.maxLon - r.minLon
	ny := int(math.Ceil(latSpan / cellLat))
	nx := int(math.Ceil(lonSpan / cellLon))
	if ny < 1 {
		ny = 1
	}
	if nx < 1 {
		nx = 1
	}
	if total := float64(nx) * float64(ny); total > resolverMaxCells {
		scale := math.Sqrt(total / resolverMaxCells)
		ny = int(math.Ceil(float64(ny) / scale))
		nx = int(math.Ceil(float64(nx) / scale))
	}
	r.nx, r.ny = nx, ny
	cellLat = latSpan / float64(ny)
	cellLon = lonSpan / float64(nx)
	if cellLat > 0 {
		r.invCellLat = 1 / cellLat
	}
	if cellLon > 0 {
		r.invCellLon = 1 / cellLon
	}

	r.cells = make([]int32, nx*ny)
	r.candStart = []int32{0}
	lb := make([]float64, len(r.pts))
	ub := make([]float64, len(r.pts))
	scratch := make([]int32, 0, len(r.pts))
	for iy := 0; iy < ny; iy++ {
		latLo := r.minLat + float64(iy)*cellLat
		latHi := latLo + cellLat
		// Bounds on cos(latitude) over the cell's lat range: the floor
		// tightens entry lower bounds, the ceiling caps the half-diagonal.
		cosCellFloor := bandCosFloor(latLo, latHi)
		cosCellCeil := bandCosCeil(latLo, latHi)
		halfDiag := 0.5*cellLat*geo.MetersPerDegreeLat +
			0.5*cellLon*geo.MetersPerDegreeLat*cosCellCeil
		for ix := 0; ix < nx; ix++ {
			lonLo := r.minLon + float64(ix)*cellLon
			lonHi := lonLo + cellLon
			center := geo.Point{Lat: (latLo + latHi) / 2, Lon: (lonLo + lonHi) / 2}
			minUB := math.Inf(1)
			for j, q := range r.pts {
				lb[j] = cellLowerBound(q, latLo, latHi, lonLo, lonHi, cosCellFloor)
				ub[j] = geo.Haversine(q, center) + halfDiag
				if ub[j] < minUB {
					minUB = ub[j]
				}
			}
			// An entry is a candidate only if it can be assigned somewhere
			// in the cell (lb <= radius) and is not strictly dominated
			// everywhere by another entry (lb <= minUB).
			scratch = scratch[:0]
			for j := range r.pts {
				if lb[j] <= r.radius && lb[j] <= minUB {
					scratch = append(scratch, int32(j))
				}
			}
			ci := iy*nx + ix
			switch {
			case len(scratch) == 0:
				r.cells[ci] = cellNoEntry
				r.resolved++
			case len(scratch) == 1 && ub[scratch[0]] <= r.radius:
				// Single surviving entry, whole cell within its radius:
				// every point in the cell resolves to it.
				r.cells[ci] = scratch[0]
				r.resolved++
			default:
				r.cells[ci] = cellListBase - int32(len(r.candStart)-1)
				r.cands = append(r.cands, scratch...)
				r.candStart = append(r.candStart, int32(len(r.cands)))
			}
		}
	}
}

// bandCosFloor returns the minimum of cos(latitude) over [latLo, latHi]
// degrees (attained at the extreme absolute latitude), clamped at zero.
func bandCosFloor(latLo, latHi float64) float64 {
	m := math.Max(math.Abs(latLo), math.Abs(latHi))
	c := math.Cos(m * math.Pi / 180)
	if c < 0 {
		return 0
	}
	return c
}

// bandCosCeil returns the maximum of cos(latitude) over [latLo, latHi]
// degrees: 1 when the band crosses the equator, else the cosine at the
// latitude closest to it.
func bandCosCeil(latLo, latHi float64) float64 {
	if latLo <= 0 && latHi >= 0 {
		return 1
	}
	m := math.Min(math.Abs(latLo), math.Abs(latHi))
	return math.Cos(m * math.Pi / 180)
}

// cellLowerBound returns a provable lower bound in metres on the
// great-circle distance from q to any point of the cell rectangle. The
// latitude bound is the exact meridian arc across the latitude gap; the
// longitude bound follows from sin²(d/2R) >= cosφ₁·cosφ₂·sin²(Δλ/2) with
// cosφ bounded below over the cell (the same identity as splitLowerBound).
func cellLowerBound(q geo.Point, latLo, latHi, lonLo, lonHi, cosCellFloor float64) float64 {
	latGap := 0.0
	if q.Lat < latLo {
		latGap = latLo - q.Lat
	} else if q.Lat > latHi {
		latGap = q.Lat - latHi
	}
	bound := latGap * geo.MetersPerDegreeLat

	lonGap := 0.0
	if q.Lon < lonLo {
		lonGap = lonLo - q.Lon
	} else if q.Lon > lonHi {
		lonGap = q.Lon - lonHi
	}
	if lonGap > 0 {
		c := math.Cos(q.Lat*math.Pi/180) * cosCellFloor
		if c > 0 {
			s := math.Sin(lonGap * math.Pi / 180 / 2)
			// sin(Δλ/2) is not monotone beyond 180°: if the far edge of
			// the cell is more than 180° away the minimum over the gap
			// range sits at that edge, not at the near one.
			if farGap := math.Max(lonHi-q.Lon, q.Lon-lonLo); farGap > 180 {
				s = math.Min(s, math.Sin(farGap*math.Pi/180/2))
			}
			v := math.Sqrt(c) * s
			if v > 1 {
				v = 1
			}
			if lonBound := 2 * geo.EarthRadius * math.Asin(v); lonBound > bound {
				bound = lonBound
			}
		}
	}
	return bound
}

// Radius returns the search radius the resolver was built for.
func (r *Resolver) Radius() float64 { return r.radius }

// Tree returns the internal k-d tree over the same entries — the exact
// oracle the resolver verifies against.
func (r *Resolver) Tree() *KDTree { return r.tree }

// ResolvedCells reports how many grid cells were proved single-answer at
// construction (0 for degenerate resolvers), and the total cell count.
func (r *Resolver) ResolvedCells() (resolved, total int) {
	return r.resolved, len(r.cells)
}

// Resolve returns the ID of the entry nearest to p if it lies within the
// search radius, and -1 when no entry is in reach. It is exact — identical
// to Tree().NearestWithin — and performs no heap allocations: most points
// land in a resolved cell (one array load); the rest verify a short
// candidate list with exact haversine distances. Exact distance ties are
// delegated to the tree so the winner matches the oracle bit for bit.
func (r *Resolver) Resolve(p geo.Point) int64 {
	if r.degenerate {
		// The band check below rejects NaN for grid-backed resolvers; the
		// tree fallback needs the same guard to honour the contract.
		if math.IsNaN(p.Lat) || math.IsNaN(p.Lon) {
			return -1
		}
		return r.resolveTree(p)
	}
	if !(p.Lat >= r.minLat && p.Lat <= r.maxLat && p.Lon >= r.minLon && p.Lon <= r.maxLon) {
		// Outside the band is provably beyond the (slack-padded) radius of
		// every entry. NaN coordinates also land here, matching the
		// "no area" answer for invalid input.
		return -1
	}
	ix := int((p.Lon - r.minLon) * r.invCellLon)
	if ix >= r.nx {
		ix = r.nx - 1
	}
	iy := int((p.Lat - r.minLat) * r.invCellLat)
	if iy >= r.ny {
		iy = r.ny - 1
	}
	v := r.cells[iy*r.nx+ix]
	if v >= 0 {
		return r.ids[v]
	}
	if v == cellNoEntry {
		return -1
	}
	l := cellListBase - v
	best := int32(-1)
	bestD := math.Inf(1)
	tie := false
	for _, slot := range r.cands[r.candStart[l]:r.candStart[l+1]] {
		d := geo.Haversine(p, r.pts[slot])
		if d < bestD {
			bestD, best, tie = d, slot, false
		} else if d == bestD {
			tie = true
		}
	}
	if best < 0 || bestD > r.radius {
		return -1
	}
	if tie {
		return r.resolveTree(p)
	}
	return r.ids[best]
}

// ResolveBatch resolves whole coordinate columns in one call, writing the
// entry ID (or -1) for point i into out[i]. It is the batched-ingest entry
// point into the assignment grid: identical to calling Resolve per point,
// but without per-point call overhead across package boundaries. lats,
// lons and out must have equal length.
func (r *Resolver) ResolveBatch(lats, lons []float64, out []int64) {
	for i := range lats {
		out[i] = r.Resolve(geo.Point{Lat: lats[i], Lon: lons[i]})
	}
}

// resolveTree answers through the exact k-d tree oracle.
func (r *Resolver) resolveTree(p geo.Point) int64 {
	e, _, ok := r.tree.NearestWithin(p, r.radius)
	if !ok {
		return -1
	}
	return e.ID
}
