package index

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"geomob/internal/geo"
)

// randomAUPoint draws points within the paper's Australian study region,
// which is the domain these indexes serve.
func randomAUPoint(rng *rand.Rand) geo.Point {
	b := geo.AustraliaBBox
	return geo.Point{
		Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
		Lon: b.MinLon + rng.Float64()*(b.MaxLon-b.MinLon),
	}
}

func makeEntries(rng *rand.Rand, n int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{ID: int64(i), P: randomAUPoint(rng)}
	}
	return entries
}

// bruteRadius is the oracle for radius queries.
func bruteRadius(entries []Entry, p geo.Point, radius float64) map[int64]bool {
	out := map[int64]bool{}
	for _, e := range entries {
		if geo.Haversine(p, e.P) <= radius {
			out[e.ID] = true
		}
	}
	return out
}

func TestGridRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	entries := makeEntries(rng, 2000)
	g, err := NewGrid(50_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		g.Insert(e)
	}
	if g.Len() != len(entries) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(entries))
	}
	for trial := 0; trial < 50; trial++ {
		p := randomAUPoint(rng)
		radius := rng.Float64() * 300_000
		want := bruteRadius(entries, p, radius)
		got := g.Radius(p, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d entries, want %d", trial, len(got), len(want))
		}
		for _, e := range got {
			if !want[e.ID] {
				t.Fatalf("trial %d: unexpected entry %d", trial, e.ID)
			}
		}
		if cnt := g.CountRadius(p, radius); cnt != len(want) {
			t.Fatalf("trial %d: CountRadius = %d, want %d", trial, cnt, len(want))
		}
	}
}

func TestGridEdgeCases(t *testing.T) {
	g, err := NewGrid(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Radius(geo.Point{Lat: -33, Lon: 151}, 1000); len(got) != 0 {
		t.Error("empty grid should return nothing")
	}
	p := geo.Point{Lat: -33.8688, Lon: 151.2093}
	g.Insert(Entry{ID: 7, P: p})
	if got := g.Radius(p, 0); len(got) != 1 {
		t.Errorf("zero-radius self query returned %d", len(got))
	}
	if got := g.Radius(p, -5); got != nil {
		t.Error("negative radius should return nil")
	}
	if _, err := NewGrid(0); err == nil {
		t.Error("zero cell size should fail")
	}
	if _, err := NewGrid(-1); err == nil {
		t.Error("negative cell size should fail")
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	g, _ := NewGrid(100_000)
	center := geo.Point{Lat: -30, Lon: 140}
	edge := geo.Destination(center, 90, 5_000)
	g.Insert(Entry{ID: 1, P: edge})
	d := geo.Haversine(center, edge)
	if got := g.Radius(center, d); len(got) != 1 {
		t.Errorf("entry exactly at radius should be included (d=%v)", d)
	}
	if got := g.Radius(center, d-1); len(got) != 0 {
		t.Error("entry just beyond radius should be excluded")
	}
}

func TestKDTreeNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	entries := makeEntries(rng, 500)
	tree, err := NewKDTree(entries)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != len(entries) {
		t.Fatalf("Len = %d", tree.Len())
	}
	for trial := 0; trial < 200; trial++ {
		p := randomAUPoint(rng)
		_, gotDist := tree.Nearest(p)
		bestDist := math.Inf(1)
		for _, e := range entries {
			if d := geo.Haversine(p, e.P); d < bestDist {
				bestDist = d
			}
		}
		// The winner must achieve the optimal distance (ties allowed).
		if math.Abs(gotDist-bestDist) > 1e-6 {
			t.Fatalf("trial %d: nearest dist %v, brute force %v", trial, gotDist, bestDist)
		}
	}
}

func TestKDTreeRadiusMatchesBruteForceAndSorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	entries := makeEntries(rng, 800)
	tree, err := NewKDTree(entries)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		p := randomAUPoint(rng)
		radius := rng.Float64() * 500_000
		want := bruteRadius(entries, p, radius)
		got := tree.Radius(p, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for _, e := range got {
			if !want[e.ID] {
				t.Fatalf("trial %d: unexpected id %d", trial, e.ID)
			}
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			return geo.Haversine(p, got[i].P) < geo.Haversine(p, got[j].P)
		}) {
			t.Fatalf("trial %d: results not sorted by distance", trial)
		}
	}
}

func TestKDTreeNearestWithin(t *testing.T) {
	sydney := geo.Point{Lat: -33.8688, Lon: 151.2093}
	melbourne := geo.Point{Lat: -37.8136, Lon: 144.9631}
	tree, err := NewKDTree([]Entry{{ID: 1, P: sydney}, {ID: 2, P: melbourne}})
	if err != nil {
		t.Fatal(err)
	}
	near := geo.Destination(sydney, 45, 10_000)
	e, d, ok := tree.NearestWithin(near, 50_000)
	if !ok || e.ID != 1 {
		t.Fatalf("expected Sydney within 50km, got %+v ok=%v", e, ok)
	}
	if math.Abs(d-10_000) > 5 {
		t.Errorf("distance = %v, want ~10000", d)
	}
	if _, _, ok := tree.NearestWithin(near, 5_000); ok {
		t.Error("5km radius should exclude Sydney at 10km")
	}
}

func TestKDTreeSingleAndDuplicate(t *testing.T) {
	p := geo.Point{Lat: -20, Lon: 130}
	tree, err := NewKDTree([]Entry{{ID: 1, P: p}})
	if err != nil {
		t.Fatal(err)
	}
	e, d := tree.Nearest(geo.Point{Lat: -21, Lon: 131})
	if e.ID != 1 || d <= 0 {
		t.Errorf("single-node nearest: %+v %v", e, d)
	}
	// Duplicate positions must all be returned by a radius query.
	dup, err := NewKDTree([]Entry{{ID: 1, P: p}, {ID: 2, P: p}, {ID: 3, P: p}})
	if err != nil {
		t.Fatal(err)
	}
	if got := dup.Radius(p, 1); len(got) != 3 {
		t.Errorf("duplicates: got %d, want 3", len(got))
	}
}

func TestKDTreeEmpty(t *testing.T) {
	if _, err := NewKDTree(nil); err == nil {
		t.Error("empty tree should fail")
	}
}

func TestKDTreeNegativeRadius(t *testing.T) {
	tree, _ := NewKDTree([]Entry{{ID: 1, P: geo.Point{Lat: -20, Lon: 130}}})
	if got := tree.Radius(geo.Point{Lat: -20, Lon: 130}, -1); got != nil {
		t.Error("negative radius should return nil")
	}
}
