package index

import (
	"math"
	"math/rand/v2"
	"testing"

	"geomob/internal/geo"
)

// resolverConfig mirrors the study's real assignment configurations: the
// three paper scales plus the fixed metro 0.5 km variant.
type resolverConfig struct {
	name    string
	entries []Entry
	radius  float64
}

// clusteredEntries draws n entries clustered around a handful of sites
// within the box, which is how census areas actually look (suburbs of one
// city, cities of one coast) and produces contested cells.
func clusteredEntries(rng *rand.Rand, n int, box geo.BBox, spreadDeg float64) []Entry {
	sites := make([]geo.Point, 1+rng.IntN(5))
	for i := range sites {
		sites[i] = geo.Point{
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
			Lon: box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon),
		}
	}
	entries := make([]Entry, n)
	for i := range entries {
		s := sites[rng.IntN(len(sites))]
		p := geo.Point{
			Lat: s.Lat + (rng.Float64()-0.5)*spreadDeg,
			Lon: s.Lon + (rng.Float64()-0.5)*spreadDeg,
		}
		if p.Lat > 90 {
			p.Lat = 90
		}
		if p.Lat < -90 {
			p.Lat = -90
		}
		entries[i] = Entry{ID: int64(i), P: p}
	}
	return entries
}

func resolverConfigs(rng *rand.Rand) []resolverConfig {
	au := geo.AustraliaBBox
	return []resolverConfig{
		{"national-50km", clusteredEntries(rng, 20, au, 8), 50_000},
		{"state-25km", clusteredEntries(rng, 20, au, 3), 25_000},
		{"metro-2km", clusteredEntries(rng, 20, geo.BBox{MinLat: -34.1, MinLon: 150.6, MaxLat: -33.7, MaxLon: 151.3}, 0.3), 2_000},
		{"metro-500m", clusteredEntries(rng, 20, geo.BBox{MinLat: -34.1, MinLon: 150.6, MaxLat: -33.7, MaxLon: 151.3}, 0.3), 500},
		{"dense-duplicates", append(clusteredEntries(rng, 30, au, 0.5), Entry{ID: 30, P: geo.Point{Lat: -33.9, Lon: 151.2}}, Entry{ID: 31, P: geo.Point{Lat: -33.9, Lon: 151.2}}), 10_000},
	}
}

// treeAssign is the exactness reference: the paper's nearest-within-ε rule
// answered by the k-d tree oracle.
func treeAssign(t *KDTree, p geo.Point, radius float64) int64 {
	e, _, ok := t.NearestWithin(p, radius)
	if !ok {
		return -1
	}
	return e.ID
}

// checkPoint asserts resolver ≡ tree on one query point.
func checkPoint(t *testing.T, name string, r *Resolver, p geo.Point) {
	t.Helper()
	got := r.Resolve(p)
	want := treeAssign(r.Tree(), p, r.Radius())
	if got != want {
		d := math.Inf(1)
		if want >= 0 {
			e, dd, _ := r.Tree().NearestWithin(p, r.Radius())
			_ = e
			d = dd
		}
		t.Fatalf("%s: Resolve(%v) = %d, tree oracle = %d (oracle dist %v, radius %v)",
			name, p, got, want, d, r.Radius())
	}
}

// TestResolverMatchesTreeFuzz is the exactness property test: on every
// study-shaped configuration the grid answer must equal the k-d tree
// oracle for uniformly random points, for points placed just inside and
// just outside the search radius of each entry, and for points sampled on
// exact grid cell boundaries (the corners are where an unsound dominance
// proof would first show).
func TestResolverMatchesTreeFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, cfg := range resolverConfigs(rng) {
		r, err := NewResolver(cfg.entries, cfg.radius)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if resolved, total := r.ResolvedCells(); total > 0 && resolved == 0 {
			t.Errorf("%s: no cell resolved out of %d — dominance proof never fires", cfg.name, total)
		}

		// Uniform points over a box somewhat wider than the band, so the
		// outside-band fast path is exercised too.
		box := geo.BBox{
			MinLat: math.Max(r.minLat-1, -90), MaxLat: math.Min(r.maxLat+1, 90),
			MinLon: math.Max(r.minLon-1, -180), MaxLon: math.Min(r.maxLon+1, 180),
		}
		for i := 0; i < 20000; i++ {
			p := geo.Point{
				Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
				Lon: box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon),
			}
			checkPoint(t, cfg.name, r, p)
		}

		// ε-edge points: just inside, exactly at, and just outside the
		// search radius of every entry, at random bearings.
		for _, e := range cfg.entries {
			for _, f := range []float64{0.25, 0.999, 0.999999, 1, 1.000001, 1.001, 1.5, 2.2} {
				brg := rng.Float64() * 360
				checkPoint(t, cfg.name, r, geo.Destination(e.P, brg, cfg.radius*f))
			}
		}

		// Cell-boundary points: exact corners and edge midpoints of random
		// grid cells, plus nudges a few ULPs to either side.
		if !r.degenerate {
			cellLat := 1 / r.invCellLat
			cellLon := 1 / r.invCellLon
			for i := 0; i < 4000; i++ {
				iy := rng.IntN(r.ny + 1)
				ix := rng.IntN(r.nx + 1)
				corner := geo.Point{
					Lat: r.minLat + float64(iy)*cellLat,
					Lon: r.minLon + float64(ix)*cellLon,
				}
				checkPoint(t, cfg.name, r, corner)
				checkPoint(t, cfg.name, r, geo.Point{Lat: math.Nextafter(corner.Lat, 90), Lon: corner.Lon})
				checkPoint(t, cfg.name, r, geo.Point{Lat: math.Nextafter(corner.Lat, -90), Lon: corner.Lon})
				checkPoint(t, cfg.name, r, geo.Point{Lat: corner.Lat, Lon: math.Nextafter(corner.Lon, 180)})
				checkPoint(t, cfg.name, r, geo.Point{Lat: corner.Lat + cellLat/2, Lon: corner.Lon + cellLon/2})
			}
		}
	}
}

// TestResolverDegenerateGeometries: configurations that defeat the grid's
// longitude bounds (polar latitudes, radii reaching around the globe,
// bands crossing the antimeridian) must fall back to the exact tree, not
// produce an unsound grid.
func TestResolverDegenerateGeometries(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	cases := []resolverConfig{
		{"polar", clusteredEntries(rng, 10, geo.BBox{MinLat: 88, MinLon: -30, MaxLat: 89.9, MaxLon: 30}, 0.5), 50_000},
		{"global-radius", clusteredEntries(rng, 10, geo.AustraliaBBox, 5), 15_000_000},
		{"antimeridian", []Entry{
			{ID: 0, P: geo.Point{Lat: -18, Lon: 179.8}},
			{ID: 1, P: geo.Point{Lat: -18.2, Lon: -179.7}},
			{ID: 2, P: geo.Point{Lat: -17.5, Lon: 178.9}},
		}, 40_000},
	}
	for _, cfg := range cases {
		r, err := NewResolver(cfg.entries, cfg.radius)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if !r.degenerate {
			t.Errorf("%s: expected a degenerate (tree-backed) resolver", cfg.name)
		}
		for i := 0; i < 2000; i++ {
			p := geo.Point{Lat: -90 + rng.Float64()*180, Lon: -180 + rng.Float64()*360}
			checkPoint(t, cfg.name, r, p)
		}
		// NaN coordinates must yield the no-area answer on the tree
		// fallback path too, not a panic.
		if got := r.Resolve(geo.Point{Lat: math.NaN(), Lon: 10}); got != -1 {
			t.Errorf("%s: Resolve(NaN) = %d, want -1", cfg.name, got)
		}
		if got := r.Resolve(geo.Point{Lat: -18, Lon: math.NaN()}); got != -1 {
			t.Errorf("%s: Resolve(NaN lon) = %d, want -1", cfg.name, got)
		}
	}
}

// TestResolverRejectsBadInput: construction fails fast on unusable input.
func TestResolverRejectsBadInput(t *testing.T) {
	if _, err := NewResolver(nil, 100); err == nil {
		t.Error("empty entry set should fail")
	}
	p := geo.Point{Lat: -33, Lon: 151}
	if _, err := NewResolver([]Entry{{ID: -1, P: p}}, 100); err == nil {
		t.Error("negative entry ID should fail")
	}
	if _, err := NewResolver([]Entry{{ID: 0, P: geo.Point{Lat: math.NaN(), Lon: 151}}}, 100); err == nil {
		t.Error("NaN coordinates should fail")
	}
	for _, radius := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := NewResolver([]Entry{{ID: 0, P: p}}, radius); err == nil {
			t.Errorf("radius %v should fail", radius)
		}
	}
}

// TestResolverZeroRadius: a zero search radius assigns only exact entry
// coordinates, matching the tree.
func TestResolverZeroRadius(t *testing.T) {
	entries := []Entry{
		{ID: 0, P: geo.Point{Lat: -33.8688, Lon: 151.2093}},
		{ID: 1, P: geo.Point{Lat: -37.8136, Lon: 144.9631}},
	}
	r, err := NewResolver(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		checkPoint(t, "zero-radius", r, e.P)
	}
	checkPoint(t, "zero-radius", r, geo.Point{Lat: -33.8688, Lon: 151.21})
	checkPoint(t, "zero-radius", r, geo.Point{Lat: 0, Lon: 0})
}

// TestResolverNoAllocs: the per-point assignment hot path must not touch
// the heap — neither on resolved cells, nor on candidate lists, nor on
// the outside-band fast path.
func TestResolverNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	entries := clusteredEntries(rng, 20, geo.AustraliaBBox, 5)
	r, err := NewResolver(entries, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]geo.Point, 512)
	for i := range queries {
		queries[i] = geo.Point{Lat: -44 + rng.Float64()*35, Lon: 112 + rng.Float64()*48}
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		r.Resolve(queries[i%len(queries)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Resolve allocated %v times per op, want 0", allocs)
	}
}

// TestKDTreeNearestNoAllocs: the rewritten iterative walk must be
// allocation-free (it previously allocated a sorted refine sweep per
// call).
func TestKDTreeNearestNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	tree, err := NewKDTree(makeEntries(rng, 500))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]geo.Point, 512)
	for i := range queries {
		queries[i] = randomAUPoint(rng)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		tree.Nearest(queries[i%len(queries)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Nearest allocated %v times per op, want 0", allocs)
	}
}

// TestGridRadiusAntimeridianWrap is the regression test for the longitude
// wrap fix: entries on both sides of ±180° must be found by queries whose
// search disc crosses the seam.
func TestGridRadiusAntimeridianWrap(t *testing.T) {
	g, err := NewGrid(10_000)
	if err != nil {
		t.Fatal(err)
	}
	east := Entry{ID: 1, P: geo.Point{Lat: -18, Lon: 179.9}}
	west := Entry{ID: 2, P: geo.Point{Lat: -18, Lon: -179.9}}
	far := Entry{ID: 3, P: geo.Point{Lat: -18, Lon: 178.0}}
	for _, e := range []Entry{east, west, far} {
		g.Insert(e)
	}
	// ~21 km separate the east and west entries across the seam.
	for _, q := range []geo.Point{
		{Lat: -18, Lon: 179.95},
		{Lat: -18, Lon: -179.95},
		{Lat: -18, Lon: 180},
		{Lat: -18, Lon: -180},
	} {
		got := g.Radius(q, 30_000)
		want := bruteRadius([]Entry{east, west, far}, q, 30_000)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d entries %v, want %d", q, len(got), got, len(want))
		}
		for _, e := range got {
			if !want[e.ID] {
				t.Fatalf("query %v: unexpected entry %d", q, e.ID)
			}
		}
		if cnt := g.CountRadius(q, 30_000); cnt != len(want) {
			t.Fatalf("query %v: CountRadius = %d, want %d", q, cnt, len(want))
		}
	}
	// Both seam entries must see each other within 25 km.
	if got := g.Radius(east.P, 25_000); len(got) != 2 {
		t.Errorf("east seam query found %d entries, want 2 (east+west)", len(got))
	}
}
