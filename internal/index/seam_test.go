package index

import (
	"math"
	"math/rand/v2"
	"testing"

	"geomob/internal/geo"
)

// TestKDTreeNearestAntimeridianFuzz: global entry sets with seam-adjacent
// queries — the geometry where the longitude split bound must respect the
// ±180° wrap.
func TestKDTreeNearestAntimeridianFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	for trial := 0; trial < 40; trial++ {
		entries := make([]Entry, 40)
		for i := range entries {
			entries[i] = Entry{ID: int64(i), P: geo.Point{
				Lat: -60 + rng.Float64()*120,
				Lon: -180 + rng.Float64()*360,
			}}
		}
		tree, err := NewKDTree(entries)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 500; q++ {
			p := geo.Point{Lat: -60 + rng.Float64()*120, Lon: -180 + rng.Float64()*360}
			if q%3 == 0 {
				p.Lon = 175 + rng.Float64()*10
				if p.Lon > 180 {
					p.Lon -= 360
				}
			}
			_, got := tree.Nearest(p)
			want := math.Inf(1)
			for _, e := range entries {
				if d := geo.Haversine(p, e.P); d < want {
					want = d
				}
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d query %v: Nearest dist %v, brute force %v", trial, p, got, want)
			}
		}
	}
}
