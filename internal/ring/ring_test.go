package ring

import (
	"fmt"
	"testing"
)

// TestSlotOfPinned pins the slot mapping: the SplitMix64 finalizer's
// top bits, so each slot is a contiguous user-hash range. A change here
// silently reshuffles every spool record and shard store.
func TestSlotOfPinned(t *testing.T) {
	pinned := map[int64]int{
		0:       0,
		1:       froz(1),
		42:      froz(42),
		-7:      froz(-7),
		1 << 40: froz(1 << 40),
	}
	for id, want := range pinned {
		if got := SlotOf(id); got != want {
			t.Errorf("SlotOf(%d) = %d, want %d", id, got, want)
		}
	}
	// Mix is the PR 5 partitioner finalizer: pin one known image.
	if got := Mix(0); got != 0 {
		t.Errorf("Mix(0) = %#x, want 0", got)
	}
	if got := Mix(1); got != 0x5692161d100b05e5 {
		t.Errorf("Mix(1) = %#x, want 0x5692161d100b05e5", got)
	}
}

// froz recomputes the slot from first principles so the pinned table
// stays honest about the top-bits rule.
func froz(id int64) int { return int(HashUser(id) >> 60) }

func TestSlotRangeCoversHash(t *testing.T) {
	for _, id := range []int64{0, 1, 2, 99, -5, 123456789, 1 << 50} {
		k := SlotOf(id)
		lo, hi := SlotRange(k)
		h := HashUser(id)
		if h < lo || h > hi {
			t.Fatalf("user %d: hash %#x outside SlotRange(%d) = [%#x, %#x]", id, h, k, lo, hi)
		}
	}
	if lo, _ := SlotRange(0); lo != 0 {
		t.Errorf("SlotRange(0) lo = %#x, want 0", lo)
	}
	if _, hi := SlotRange(Slots - 1); hi != ^uint64(0) {
		t.Errorf("SlotRange(%d) hi = %#x, want max", Slots-1, hi)
	}
}

// TestSlotDistribution checks users spread evenly across slots: dense
// sequential ids must land within 15% of uniform.
func TestSlotDistribution(t *testing.T) {
	const users = 160000
	var counts [Slots]int
	for id := int64(0); id < users; id++ {
		counts[SlotOf(id)]++
	}
	want := float64(users) / Slots
	for k, c := range counts {
		if dev := (float64(c) - want) / want; dev > 0.15 || dev < -0.15 {
			t.Errorf("slot %d holds %d users (%.1f%% off uniform)", k, c, dev*100)
		}
	}
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%03d", i)
	}
	return out
}

// TestPlacementPure: placement must be a pure function of the ring
// configuration — rebuilding from the same names yields the same
// version and identical replica sets.
func TestPlacementPure(t *testing.T) {
	a, err := New(names(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(names(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version() != b.Version() {
		t.Fatalf("same config, different versions: %#x vs %#x", a.Version(), b.Version())
	}
	for k := 0; k < Slots; k++ {
		ra, rb := a.Replicas(k), b.Replicas(k)
		if fmt.Sprint(ra) != fmt.Sprint(rb) {
			t.Fatalf("slot %d placed differently: %v vs %v", k, ra, rb)
		}
	}
	c, err := New(names(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version() == a.Version() {
		t.Fatal("replication change did not change the version")
	}
}

func TestReplicaSets(t *testing.T) {
	for _, tc := range []struct{ n, r, want int }{
		{1, 1, 1}, {1, 3, 1}, {3, 2, 2}, {3, 5, 3}, {5, 3, 3},
	} {
		g, err := New(names(tc.n), tc.r)
		if err != nil {
			t.Fatal(err)
		}
		covered := make([]int, tc.n)
		for k := 0; k < Slots; k++ {
			reps := g.Replicas(k)
			if len(reps) != tc.want {
				t.Fatalf("n=%d r=%d slot %d: %d replicas, want %d", tc.n, tc.r, k, len(reps), tc.want)
			}
			seen := map[int]bool{}
			for _, m := range reps {
				if seen[m] {
					t.Fatalf("n=%d r=%d slot %d: duplicate replica %d", tc.n, tc.r, k, m)
				}
				seen[m] = true
				covered[m]++
			}
			if g.Owner(k) != reps[0] {
				t.Fatalf("Owner(%d) != Replicas(%d)[0]", k, k)
			}
		}
		// Every member must carry some load in these small deterministic
		// configurations.
		for m, c := range covered {
			if c == 0 {
				t.Errorf("n=%d r=%d: member %d owns no slots", tc.n, tc.r, m)
			}
		}
	}
}

func replicaSet(g *Ring, k int) map[int]bool {
	s := map[int]bool{}
	for _, m := range g.Replicas(k) {
		s[m] = true
	}
	return s
}

// TestJoinMinimalMovement proves the consistent-hashing contract: a
// join moves slots only onto the joining member — no slot ever moves
// between two pre-existing members.
func TestJoinMinimalMovement(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for _, r := range []int{1, 2, 3} {
			old, err := New(names(n), r)
			if err != nil {
				t.Fatal(err)
			}
			grown, err := old.Join("joiner")
			if err != nil {
				t.Fatal(err)
			}
			joiner := n
			moved := 0
			for k := 0; k < Slots; k++ {
				oldSet, newSet := replicaSet(old, k), replicaSet(grown, k)
				for m := range newSet {
					if !oldSet[m] && m != joiner {
						t.Fatalf("n=%d r=%d slot %d: member %d gained the slot on an unrelated join", n, r, k, m)
					}
				}
				if newSet[joiner] {
					moved++
				}
			}
			if moved == 0 && n < 6 {
				t.Errorf("n=%d r=%d: joiner received no slots", n, r)
			}
			if moved == Slots && n > 1 && r == 1 {
				t.Errorf("n=%d r=1: join moved every slot; movement is not minimal", n)
			}
		}
	}
}

// TestLeaveMinimalMovement: a leave keeps every surviving replica in
// place — survivors only ever gain the departed member's slots.
func TestLeaveMinimalMovement(t *testing.T) {
	for n := 2; n <= 6; n++ {
		for _, r := range []int{1, 2} {
			old, err := New(names(n), r)
			if err != nil {
				t.Fatal(err)
			}
			for leaver := 0; leaver < n; leaver++ {
				shrunk, err := old.Leave(leaver)
				if err != nil {
					t.Fatal(err)
				}
				for k := 0; k < Slots; k++ {
					oldSet, newSet := replicaSet(old, k), replicaSet(shrunk, k)
					for m := range oldSet {
						if m != leaver && !newSet[m] {
							t.Fatalf("n=%d r=%d leave(%d) slot %d: surviving replica %d was displaced", n, r, leaver, k, m)
						}
					}
					if newSet[leaver] {
						t.Fatalf("n=%d r=%d slot %d: departed member still a replica", n, r, k)
					}
				}
				if len(shrunk.Members()) != n {
					t.Fatalf("leave renumbered members: %d entries, want %d", len(shrunk.Members()), n)
				}
			}
		}
	}
}

func TestDiff(t *testing.T) {
	old, err := New(names(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(old, old); len(d) != 0 {
		t.Fatalf("Diff(g, g) = %v, want empty", d)
	}
	grown, err := old.Join("joiner")
	if err != nil {
		t.Fatal(err)
	}
	moves := Diff(old, grown)
	if len(moves) == 0 {
		t.Fatal("join produced no movement")
	}
	for _, mv := range moves {
		for _, m := range mv.Added {
			if m != 3 {
				t.Fatalf("slot %d: join added member %d, want only the joiner", mv.Slot, m)
			}
		}
		if len(mv.Added) == 0 && len(mv.Removed) == 0 {
			t.Fatalf("slot %d: empty movement reported", mv.Slot)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("New(nil) succeeded")
	}
	if _, err := New([]string{"a", "a"}, 1); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := New([]string{"a"}, 0); err == nil {
		t.Error("r=0 accepted")
	}
	g, err := New([]string{"a", "b"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Join("a"); err == nil {
		t.Error("re-join of existing member accepted")
	}
	if _, err := g.Leave(5); err == nil {
		t.Error("out-of-range leave accepted")
	}
	shrunk, err := g.Leave(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shrunk.Leave(0); err == nil {
		t.Error("double leave accepted")
	}
	if _, err := shrunk.Leave(1); err == nil {
		t.Error("removing the last live member accepted")
	}
}
