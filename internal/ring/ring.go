// Package ring implements consistent-hash placement for the cluster
// tier (DESIGN.md §10). The keyspace is the 64-bit SplitMix64 image of
// the tweet user id — the same finalizer the PR 5 partitioner pinned —
// carved into a fixed number of contiguous hash ranges called slots.
// A slot is the unit of placement, replication, and handoff: every
// user's whole trajectory hashes into exactly one slot, so any set of
// slot-level partials can be merged into a bit-identical study result
// no matter which replica served each slot.
//
// Members own slots through virtual nodes on a 64-bit circle. Each
// live member projects a fixed number of points; a slot's replica set
// is the first R distinct live members met walking clockwise from the
// slot's own point, owner first. Placement is a pure function of the
// ring configuration (member names, tombstones, replication factor) —
// and therefore of the ring version, which hashes exactly that
// configuration — so every coordinator restart recomputes the same
// assignment without any coordination.
//
// Rings are immutable: Join and Leave return a new ring, and Diff
// reports the minimal slot movement between two versions. The walk
// construction gives the classic consistent-hashing guarantee: a join
// only moves slots onto the joining member (never between two
// pre-existing members), and a leave only moves the departed member's
// slots onto survivors.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

const (
	// Slots is the number of contiguous user-hash ranges the keyspace
	// is carved into — the granularity of placement and handoff. It is
	// a wire-level protocol constant: spool records, delivery frames,
	// and shard aggregators are all slot-addressed, so changing it
	// invalidates every spool and store layout.
	Slots = 16

	// slotShift selects the top log2(Slots) bits of the mixed hash, so
	// slot k covers the contiguous hash range [k<<60, (k+1)<<60).
	slotShift = 64 - 4

	// vnodes is the number of virtual points each live member projects
	// onto the circle. With only Slots*R placements to balance the
	// exact count matters little; 64 keeps the arc lengths reasonably
	// even for small clusters.
	vnodes = 64
)

// Mix applies the SplitMix64 finalizer — the same bijection the PR 5
// partitioner pinned, so slot placement and the legacy modulo
// partitioner agree on the underlying hash.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashUser maps a user id onto the 64-bit keyspace.
func HashUser(userID int64) uint64 { return Mix(uint64(userID)) }

// SlotOf returns the slot owning userID's entire trajectory. Using the
// top bits of the mixed hash (rather than a modulo) makes each slot a
// contiguous hash range, so degraded-read errors can name the exact
// missing user-range.
func SlotOf(userID int64) int { return int(HashUser(userID) >> slotShift) }

// SlotRange returns the inclusive user-hash range [lo, hi] covered by
// slot.
func SlotRange(slot int) (lo, hi uint64) {
	lo = uint64(slot) << slotShift
	hi = lo | (1<<slotShift - 1)
	return lo, hi
}

// Member is one ring participant. Members are index-stable: leaving
// tombstones the entry rather than renumbering survivors, so node
// indexes remain valid across ring versions (spool destination masks
// and lane indexes depend on this).
type Member struct {
	Name string
	Gone bool
}

// Ring is an immutable placement table: replica sets for every slot at
// one configuration version.
type Ring struct {
	r       int
	members []Member
	version uint64
	owners  [Slots][]int
}

type vpoint struct {
	h      uint64
	member int
	v      int
}

// New builds a ring over the named members with replication factor r.
// The replica set of a slot has min(r, live members) distinct members.
func New(names []string, r int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("ring: need at least one member")
	}
	if r < 1 {
		return nil, fmt.Errorf("ring: replication factor %d < 1", r)
	}
	members := make([]Member, len(names))
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("ring: empty member name")
		}
		if seen[name] {
			return nil, fmt.Errorf("ring: duplicate member %q", name)
		}
		seen[name] = true
		members[i] = Member{Name: name}
	}
	return build(members, r)
}

// Join returns a new ring with name appended as a live member.
func (g *Ring) Join(name string) (*Ring, error) {
	if name == "" {
		return nil, fmt.Errorf("ring: empty member name")
	}
	for _, m := range g.members {
		if m.Name == name {
			return nil, fmt.Errorf("ring: member %q already present", name)
		}
	}
	members := append(append([]Member(nil), g.members...), Member{Name: name})
	return build(members, g.r)
}

// Leave returns a new ring with the member at index tombstoned. The
// index stays occupied so surviving node indexes do not shift.
func (g *Ring) Leave(index int) (*Ring, error) {
	if index < 0 || index >= len(g.members) {
		return nil, fmt.Errorf("ring: member index %d out of range", index)
	}
	if g.members[index].Gone {
		return nil, fmt.Errorf("ring: member %q already left", g.members[index].Name)
	}
	live := 0
	for _, m := range g.members {
		if !m.Gone {
			live++
		}
	}
	if live == 1 {
		return nil, fmt.Errorf("ring: cannot remove the last live member")
	}
	members := append([]Member(nil), g.members...)
	members[index].Gone = true
	return build(members, g.r)
}

func build(members []Member, r int) (*Ring, error) {
	g := &Ring{r: r, members: members}
	var live []int
	for i, m := range members {
		if !m.Gone {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("ring: no live members")
	}

	// Version hashes the exact configuration placement depends on, so
	// equal versions imply identical replica sets everywhere.
	vh := fnv.New64a()
	fmt.Fprintf(vh, "r=%d;", r)
	for _, m := range members {
		fmt.Fprintf(vh, "%q:%v;", m.Name, m.Gone)
	}
	g.version = vh.Sum64()

	points := make([]vpoint, 0, len(live)*vnodes)
	for _, i := range live {
		nh := fnv.New64a()
		nh.Write([]byte(members[i].Name))
		base := nh.Sum64()
		for v := 0; v < vnodes; v++ {
			points = append(points, vpoint{
				h:      Mix(base ^ Mix(uint64(v)+0x5851f42d4c957f2d)),
				member: i,
				v:      v,
			})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].h != points[b].h {
			return points[a].h < points[b].h
		}
		if points[a].member != points[b].member {
			return points[a].member < points[b].member
		}
		return points[a].v < points[b].v
	})

	want := r
	if want > len(live) {
		want = len(live)
	}
	for k := 0; k < Slots; k++ {
		start := sort.Search(len(points), func(i int) bool {
			return points[i].h >= slotPoint(k)
		})
		replicas := make([]int, 0, want)
		taken := make(map[int]bool, want)
		for step := 0; step < len(points) && len(replicas) < want; step++ {
			p := points[(start+step)%len(points)]
			if !taken[p.member] {
				taken[p.member] = true
				replicas = append(replicas, p.member)
			}
		}
		g.owners[k] = replicas
	}
	return g, nil
}

// slotPoint places slot k on the circle, mixed so consecutive slots do
// not cluster on one arc.
func slotPoint(k int) uint64 {
	return Mix(uint64(k)*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03)
}

// Version identifies this ring's configuration. Placement is a pure
// function of (Version, user id).
func (g *Ring) Version() uint64 { return g.version }

// Replication returns the configured replication factor R. Slots hold
// min(R, live members) replicas.
func (g *Ring) Replication() int { return g.r }

// Members returns the index-stable member table, tombstones included.
func (g *Ring) Members() []Member { return append([]Member(nil), g.members...) }

// Live returns the number of live members.
func (g *Ring) Live() int {
	n := 0
	for _, m := range g.members {
		if !m.Gone {
			n++
		}
	}
	return n
}

// Replicas returns the member indexes replicating slot, owner first.
// The returned slice is shared; callers must not mutate it.
func (g *Ring) Replicas(slot int) []int { return g.owners[slot] }

// Owner returns the member index owning slot.
func (g *Ring) Owner(slot int) int { return g.owners[slot][0] }

// SlotsFor returns the slots whose replica set includes member node,
// in ascending slot order.
func (g *Ring) SlotsFor(node int) []int {
	var slots []int
	for k := 0; k < Slots; k++ {
		for _, m := range g.owners[k] {
			if m == node {
				slots = append(slots, k)
				break
			}
		}
	}
	return slots
}

// Movement is one slot's replica-set change between two ring versions.
type Movement struct {
	Slot    int
	Added   []int // member indexes that must receive the slot's data
	Removed []int // member indexes no longer replicating the slot
}

// Diff returns the minimal movement set between two rings: for every
// slot, which members joined and which left its replica set. Slots
// with unchanged replica sets are omitted.
func Diff(old, new *Ring) []Movement {
	var moves []Movement
	for k := 0; k < Slots; k++ {
		oldSet := make(map[int]bool, len(old.owners[k]))
		for _, m := range old.owners[k] {
			oldSet[m] = true
		}
		newSet := make(map[int]bool, len(new.owners[k]))
		for _, m := range new.owners[k] {
			newSet[m] = true
		}
		var mv Movement
		mv.Slot = k
		for _, m := range new.owners[k] {
			if !oldSet[m] {
				mv.Added = append(mv.Added, m)
			}
		}
		for _, m := range old.owners[k] {
			if !newSet[m] {
				mv.Removed = append(mv.Removed, m)
			}
		}
		if len(mv.Added) > 0 || len(mv.Removed) > 0 {
			moves = append(moves, mv)
		}
	}
	return moves
}
