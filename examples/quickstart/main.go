// Quickstart: generate a synthetic geo-tagged tweet corpus, run the full
// multi-scale study, and print the paper's headline numbers — the pooled
// population correlation (Fig. 3) and the model comparison (Table II) —
// then show the request-scoped API answering a targeted single-scale
// flows query from the same study.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"geomob"
)

func main() {
	// A 20,000-user corpus runs in a few seconds; the paper's full corpus
	// corresponds to 473,956 users.
	cfg := geomob.DefaultCorpusConfig(20000, 42, 43)
	tweets, err := geomob.GenerateCorpus(cfg)
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}
	fmt.Printf("corpus: %d tweets by %d users\n", len(tweets), cfg.NumUsers)

	// The zero StudyRequest computes everything Run does; a scoped
	// request (below) computes only what it asks for.
	study := geomob.NewStudy(geomob.SliceSource(tweets))
	result, err := study.Execute(context.Background(), geomob.StudyRequest{})
	if err != nil {
		log.Fatalf("run study: %v", err)
	}

	st := result.Stats
	fmt.Printf("avg tweets/user: %.1f   avg waiting time: %.1f h   avg locations/user: %.2f\n",
		st.AvgTweetsPerUser, st.AvgWaitingHours, st.AvgLocations)

	fmt.Printf("\npopulation estimation (Fig. 3): pooled Pearson r = %.3f, p = %.2e over %d areas\n",
		result.Pooled.TestLog.R, result.Pooled.TestLog.P, result.Pooled.NSamples)
	fmt.Println("(paper: r = 0.816, p = 2.06e-15 over 60 areas)")

	fmt.Println("\nmobility model comparison (Table II), Pearson on log traffic:")
	for _, scale := range geomob.Scales() {
		mr := result.Mobility[scale]
		fmt.Printf("  %-13s", scale.String())
		for _, fit := range mr.Fits {
			fmt.Printf("  %s r=%.3f hit@50%%=%.3f", fit.Name, fit.Metrics.PearsonLog, fit.Metrics.HitRate50)
		}
		fmt.Println()
	}
	fmt.Println("(paper: Gravity 2Param best overall; Radiation worst at every scale)")

	// Request-scoped execution: just the state-scale flow matrix — one
	// observer instead of eight, same single pass over the stream.
	flowsOnly, err := study.Execute(context.Background(), geomob.StudyRequest{
		Analyses: []geomob.Analysis{geomob.AnalysisFlows},
		Scales:   []geomob.Scale{geomob.ScaleState},
	})
	if err != nil {
		log.Fatalf("flows request: %v", err)
	}
	sf := flowsOnly.Mobility[geomob.ScaleState]
	fmt.Printf("\nscoped request (state flows only): %d observers, %.0f total flow over %d pairs\n",
		flowsOnly.Observers, sf.TotalFlow, sf.FlowPairs)
}
