// Quickstart: generate a synthetic geo-tagged tweet corpus, run the full
// multi-scale study, and print the paper's headline numbers — the pooled
// population correlation (Fig. 3) and the model comparison (Table II).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geomob"
)

func main() {
	// A 20,000-user corpus runs in a few seconds; the paper's full corpus
	// corresponds to 473,956 users.
	cfg := geomob.DefaultCorpusConfig(20000, 42, 43)
	tweets, err := geomob.GenerateCorpus(cfg)
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}
	fmt.Printf("corpus: %d tweets by %d users\n", len(tweets), cfg.NumUsers)

	result, err := geomob.NewStudy(geomob.SliceSource(tweets)).Run()
	if err != nil {
		log.Fatalf("run study: %v", err)
	}

	st := result.Stats
	fmt.Printf("avg tweets/user: %.1f   avg waiting time: %.1f h   avg locations/user: %.2f\n",
		st.AvgTweetsPerUser, st.AvgWaitingHours, st.AvgLocations)

	fmt.Printf("\npopulation estimation (Fig. 3): pooled Pearson r = %.3f, p = %.2e over %d areas\n",
		result.Pooled.TestLog.R, result.Pooled.TestLog.P, result.Pooled.NSamples)
	fmt.Println("(paper: r = 0.816, p = 2.06e-15 over 60 areas)")

	fmt.Println("\nmobility model comparison (Table II), Pearson on log traffic:")
	for _, scale := range geomob.Scales() {
		mr := result.Mobility[scale]
		fmt.Printf("  %-13s", scale.String())
		for _, fit := range mr.Fits {
			fmt.Printf("  %s r=%.3f hit@50%%=%.3f", fit.Name, fit.Metrics.PearsonLog, fit.Metrics.HitRate50)
		}
		fmt.Println()
	}
	fmt.Println("(paper: Gravity 2Param best overall; Radiation worst at every scale)")
}
