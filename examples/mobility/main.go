// Mobility model comparison walkthrough (§IV of the paper): extract
// origin–destination flows from consecutive tweets, fit the Gravity
// (2- and 4-parameter) and Radiation models, and reproduce the Table II
// comparison with the fitted parameters shown.
//
// Run with:
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"

	"geomob"
)

func main() {
	tweets, err := geomob.GenerateCorpus(geomob.DefaultCorpusConfig(25000, 3, 5))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	result, err := geomob.NewStudy(geomob.SliceSource(tweets)).Run()
	if err != nil {
		log.Fatalf("study: %v", err)
	}

	for _, scale := range geomob.Scales() {
		mr := result.Mobility[scale]
		fmt.Printf("=== %s (ε = %.0f km, %d OD pairs, total flow %.0f)\n",
			scale, scale.SearchRadius()/1000, mr.FlowPairs, mr.TotalFlow)
		for _, fit := range mr.Fits {
			fmt.Printf("  %-15s %-40s r=%.3f  hit@50%%=%.3f  (n=%d)\n",
				fit.Name, fit.Params, fit.Metrics.PearsonLog, fit.Metrics.HitRate50, fit.Metrics.N)
		}
		// The busiest corridor at this scale.
		var bi, bj int
		var best float64
		for i := range mr.Flows.Flows {
			for j, v := range mr.Flows.Flows[i] {
				if i != j && v > best {
					best, bi, bj = v, i, j
				}
			}
		}
		if best > 0 {
			fmt.Printf("  busiest corridor: %s -> %s (%.0f transitions)\n",
				mr.Flows.Areas[bi].Name, mr.Flows.Areas[bj].Name, best)
		}
		fmt.Println()
	}

	// Demonstrate fitting a model directly through the public API, e.g. to
	// predict a specific corridor.
	national := result.Mobility[geomob.ScaleNational]
	g2 := &geomob.Gravity2{}
	if err := g2.Fit(national.OD); err != nil {
		log.Fatalf("fit: %v", err)
	}
	rs, _ := geomob.Gazetteer().Regions(geomob.ScaleNational)
	syd, mel := rs.Index("Sydney"), rs.Index("Melbourne")
	pred, err := g2.Predict(national.OD, syd, mel)
	if err != nil {
		log.Fatalf("predict: %v", err)
	}
	fmt.Printf("Gravity 2Param (γ=%.2f): Sydney→Melbourne predicted %.0f, extracted %.0f\n",
		g2.Gamma, pred, national.OD.Flow[syd][mel])
}
