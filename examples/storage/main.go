// Storage engine walkthrough: import a tweet corpus into the embedded
// tweetdb store, demonstrate predicate pushdown (time / space / user
// queries that skip segments without touching payload), compaction into
// the canonical (user, time) order, and integrity verification.
//
// Run with:
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"geomob"
)

func main() {
	dir := filepath.Join(os.TempDir(), "geomob-storage-example")
	defer os.RemoveAll(dir)

	tweets, err := geomob.GenerateCorpus(geomob.DefaultCorpusConfig(25000, 21, 23))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	store, err := geomob.OpenStore(dir)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	// Ingest in four separate batches to create multiple segments.
	quarter := len(tweets) / 4
	for i := 0; i < 4; i++ {
		end := (i + 1) * quarter
		if i == 3 {
			end = len(tweets)
		}
		if err := store.Append(tweets[i*quarter : end]); err != nil {
			log.Fatalf("append: %v", err)
		}
	}
	var bytes int64
	for _, seg := range store.Segments() {
		bytes += seg.Bytes
	}
	fmt.Printf("ingested %d tweets into %d segments (%.1f bytes/tweet with delta-varint coding)\n",
		store.Count(), len(store.Segments()), float64(bytes)/float64(store.Count()))

	// Time-windowed query: segments outside the window are pruned via
	// metadata without reading a byte of payload.
	from := time.Date(2013, time.October, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2013, time.November, 1, 0, 0, 0, 0, time.UTC)
	it := store.Scan(geomob.StoreQuery{FromTS: from.UnixMilli(), ToTS: to.UnixMilli()})
	count := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	if err := it.Err(); err != nil {
		log.Fatalf("scan: %v", err)
	}
	scanned, pruned := it.Stats()
	fmt.Printf("October window: %d tweets (decoded %d segments, pruned %d by metadata)\n",
		count, scanned, pruned)

	// Spatial query over the Sydney region.
	box := geomob.AustraliaBBox
	box.MinLat, box.MaxLat = -34.2, -33.4
	box.MinLon, box.MaxLon = 150.5, 151.5
	it = store.Scan(geomob.StoreQuery{BBox: &box})
	count = 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	if err := it.Err(); err != nil {
		log.Fatalf("bbox scan: %v", err)
	}
	fmt.Printf("Sydney region: %d tweets\n", count)

	// Compact to the global (user, time) order the analysis needs.
	if err := store.Compact(); err != nil {
		log.Fatalf("compact: %v", err)
	}
	sorted, err := store.IsSorted()
	if err != nil {
		log.Fatalf("is-sorted: %v", err)
	}
	fmt.Printf("after compaction: %d segment(s), globally sorted = %v\n",
		len(store.Segments()), sorted)

	// After compaction segments partition the user-id space, so a
	// single-user query decodes exactly one segment.
	uid := tweets[len(tweets)/2].UserID
	it = store.Scan(geomob.StoreQuery{UserID: &uid})
	count = 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	if err := it.Err(); err != nil {
		log.Fatalf("user scan: %v", err)
	}
	scanned, pruned = it.Stats()
	fmt.Printf("user %d: %d tweets (decoded %d segment(s), pruned %d)\n",
		uid, count, scanned, pruned)

	// Integrity: every block carries a CRC-32; Verify re-reads everything.
	if err := store.Verify(); err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Println("integrity verification passed")

	// Deliberately corrupt one byte and show that the store notices.
	seg := store.Segments()[0]
	path := filepath.Join(dir, seg.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("read segment: %v", err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		log.Fatalf("write segment: %v", err)
	}
	if err := store.Verify(); err != nil {
		fmt.Printf("corruption detected as expected: %v\n", err)
	} else {
		log.Fatal("corruption was NOT detected")
	}
}
