// Live ingest walkthrough: stream a synthetic corpus into a tweetdb
// store and the time-bucketed aggregation ring (DESIGN.md §7) in daily
// batches — the near-real-time deployment the paper motivates — then
// answer windowed population and flow queries by folding materialised
// bucket partials, verifying along the way that the folded answers are
// identical to a cold full pass and that no query ever rescans storage.
//
// Run with:
//
//	go run ./examples/live
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	"geomob"
)

func main() {
	dir, err := os.MkdirTemp("", "geomob-live-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := geomob.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// The ring materialises the paper-default shape with daily buckets.
	agg, err := geomob.NewLiveAggregator(geomob.LiveOptions{BucketWidth: 24 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	ing, err := geomob.NewLiveIngestor(store, agg, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Replay a synthetic collection as a chronological feed: batches
	// arrive day by day, exactly like a streaming ingest would.
	tweets, err := geomob.GenerateCorpus(geomob.DefaultCorpusConfig(8000, 42, 43))
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(tweets, func(i, j int) bool { return tweets[i].TS < tweets[j].TS })
	day := int64(24 * time.Hour / time.Millisecond)
	batches := 0
	for off := 0; off < len(tweets); {
		end := off
		dayIdx := tweets[off].TS / day
		for end < len(tweets) && tweets[end].TS/day == dayIdx {
			end++
		}
		for _, t := range tweets[off:end] {
			if err := ing.Add(t); err != nil {
				log.Fatal(err)
			}
		}
		if err := ing.Flush(); err != nil {
			log.Fatal(err)
		}
		batches++
		off = end
	}
	fmt.Printf("ingested %d tweets in %d daily batches into %d buckets\n",
		agg.Ingested(), batches, agg.Buckets())

	// A windowed query folds precomputed bucket partials — here, the
	// national population estimate over the collection's second month.
	first := time.UnixMilli(tweets[0].TS).UTC()
	from := first.AddDate(0, 1, 0)
	to := first.AddDate(0, 2, 0)
	req := geomob.StudyRequest{
		Analyses: []geomob.Analysis{geomob.AnalysisPopulation},
		Scales:   []geomob.Scale{geomob.ScaleNational},
		From:     from, To: to,
	}
	res, err := agg.Query(req)
	if err != nil {
		log.Fatal(err)
	}
	est := res.Population[geomob.ScaleNational]
	corr, err := est.Correlation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window [%s, %s): national log-Pearson r = %.3f over %d areas\n",
		from.Format("2006-01-02"), to.Format("2006-01-02"), corr.R, len(est.TwitterUsers))

	// The fold is exact: a cold full pass over the same records gives the
	// same numbers (the property tests assert bit-identity; here we spot
	// check the headline).
	window, err := agg.WindowTweets(math.MinInt64, math.MaxInt64)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := geomob.NewStudy(geomob.SliceSource(window)).Execute(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	refCorr, err := ref.Population[geomob.ScaleNational].Correlation()
	if err != nil {
		log.Fatal(err)
	}
	if corr.R != refCorr.R {
		log.Fatalf("fold diverged from full pass: %v vs %v", corr.R, refCorr.R)
	}
	fmt.Println("bucket fold == cold full pass: exact")

	// And none of it touched the store: the ring answered everything.
	fmt.Printf("store scans during queries: %d (partial builds: %d)\n",
		store.ScanCount(), agg.Builds())

	// Flows over an aligned window reuse the same partials.
	fres, err := agg.Query(geomob.StudyRequest{
		Analyses: []geomob.Analysis{geomob.AnalysisFlows},
		Scales:   []geomob.Scale{geomob.ScaleNational},
		From:     from, To: to,
	})
	if err != nil {
		log.Fatal(err)
	}
	mr := fres.Mobility[geomob.ScaleNational]
	fmt.Printf("flows in window: %.0f transitions over %d OD pairs\n", mr.TotalFlow, mr.FlowPairs)
}
