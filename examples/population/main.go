// Population estimation walkthrough (§III of the paper): build a corpus,
// store it in the embedded tweet database, count unique users per census
// area at each geographic scale, rescale, and compare against the census —
// including the paper's search-radius sensitivity experiment (Fig. 3b).
//
// Run with:
//
//	go run ./examples/population
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"geomob"
)

func main() {
	dir := filepath.Join(os.TempDir(), "geomob-population-example")
	defer os.RemoveAll(dir)

	// Generate and persist a corpus, then read it back through the store:
	// the same flow a production deployment would use with real data.
	tweets, err := geomob.GenerateCorpus(geomob.DefaultCorpusConfig(25000, 7, 11))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	store, err := geomob.OpenStore(dir)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	if err := store.Append(tweets); err != nil {
		log.Fatalf("append: %v", err)
	}
	if err := store.Compact(); err != nil {
		log.Fatalf("compact: %v", err)
	}
	fmt.Printf("stored %d tweets in %d segment(s)\n\n", store.Count(), len(store.Segments()))

	study := geomob.NewStudy(geomob.StoreSource{Store: store})
	result, err := study.Run()
	if err != nil {
		log.Fatalf("study: %v", err)
	}

	for _, scale := range geomob.Scales() {
		est := result.Population[scale]
		ct, err := est.Correlation()
		if err != nil {
			log.Fatalf("correlation: %v", err)
		}
		fmt.Printf("%-13s ε=%4.1f km   C=%7.1f   r=%.3f   p=%.2e\n",
			scale.String(), est.Radius/1000, est.C, ct.R, ct.P)
		// Show the three most under- and over-estimated areas.
		gaz := geomob.Gazetteer()
		rs, _ := gaz.Regions(scale)
		worstIdx, worstErr := -1, 0.0
		for i := range est.Rescaled {
			if est.Census[i] == 0 {
				continue
			}
			relErr := (est.Rescaled[i] - est.Census[i]) / est.Census[i]
			if abs(relErr) > abs(worstErr) {
				worstErr, worstIdx = relErr, i
			}
		}
		if worstIdx >= 0 {
			fmt.Printf("              worst area: %s (%.0f%% relative error)\n",
				rs.Areas[worstIdx].Name, worstErr*100)
		}
	}

	fmt.Printf("\npooled over all 60 areas: r=%.3f p=%.2e (paper: 0.816, 2.06e-15)\n",
		result.Pooled.TestLog.R, result.Pooled.TestLog.P)

	// Fig. 3b: the metropolitan estimate collapses as ε shrinks to 0.5 km.
	fmt.Println("\nmetropolitan search-radius sensitivity (Fig. 3b):")
	for _, radius := range []float64{250, 500, 1000, 2000, 4000} {
		est, err := study.PopulationAtRadius(geomob.ScaleMetropolitan, radius)
		if err != nil {
			log.Fatalf("radius %v: %v", radius, err)
		}
		ct, err := est.Correlation()
		if err != nil {
			log.Fatalf("radius %v correlation: %v", radius, err)
		}
		fmt.Printf("  ε=%4.2f km  r=%.3f\n", radius/1000, ct.R)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
