// Cluster walkthrough: an in-process 4-partition deployment (DESIGN.md
// §8) — the -partitions mode of cmd/mobserve as a library. A coordinator
// routes a synthetic corpus by user hash into four shard rings (each in
// lockstep with its own store), answers a full study by scatter-gather,
// verifies the answer equals a cold single-node pass, and shows that
// warm repeats are served from the coverage-fingerprinted snapshot cache
// with zero shard folds and zero store scans.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"geomob"
)

func main() {
	dir, err := os.MkdirTemp("", "geomob-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Four in-process partitions, each a live bucket ring in lockstep
	// with its own store — the layout one mobserve process serves with
	// -partitions 4.
	const partitions = 4
	var shards []geomob.ClusterShard
	var locals []*geomob.ClusterLocalShard
	for i := 0; i < partitions; i++ {
		store, err := geomob.OpenStore(filepath.Join(dir, fmt.Sprintf("part-%03d", i)))
		if err != nil {
			log.Fatal(err)
		}
		shard, err := geomob.NewClusterLocalShard(store, geomob.LiveOptions{BucketWidth: 24 * time.Hour})
		if err != nil {
			log.Fatal(err)
		}
		shards = append(shards, shard)
		locals = append(locals, shard)
	}
	coord, err := geomob.NewClusterCoordinator(shards, geomob.ClusterCoordinatorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// Ingest through the coordinator: every record is hashed to its
	// owning partition, batched, and delivered concurrently per shard.
	tweets, err := geomob.GenerateCorpus(geomob.DefaultCorpusConfig(6000, 42, 43))
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tweets {
		if err := coord.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	if err := coord.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d tweets across %d partitions:\n", len(tweets), partitions)
	for i, l := range locals {
		fmt.Printf("  partition %d: %7d durable records, %3d ring buckets\n",
			i, l.Store().Count(), l.Buckets())
	}
	scansAfterBoot := storeScans(locals)

	// Scatter-gather the full study. Each shard folds its materialised
	// bucket partials; the coordinator interleaves the user-disjoint
	// partials and assembles through the single-node float pipeline.
	res, cached, err := coord.Query(geomob.StudyRequest{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull study via scatter-gather (cached=%v):\n", cached)
	fmt.Printf("  users %d, tweets %d, pooled log-log r = %.4f\n",
		res.Stats.Users, res.Stats.Tweets, res.Pooled.TestLog.R)

	// The cluster answer is the single-node answer, bit for bit.
	sorted := append([]geomob.Tweet(nil), tweets...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.UserID != b.UserID {
			return a.UserID < b.UserID
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.ID < b.ID
	})
	ref, err := geomob.NewStudy(geomob.SliceSource(sorted)).Execute(context.Background(), geomob.StudyRequest{})
	if err != nil {
		log.Fatal(err)
	}
	if math.Float64bits(res.Pooled.TestLog.R) != math.Float64bits(ref.Pooled.TestLog.R) ||
		res.Stats.Users != ref.Stats.Users ||
		math.Float64bits(res.Stats.MeanGyrationKM) != math.Float64bits(ref.Stats.MeanGyrationKM) {
		log.Fatal("cluster answer diverges from the single-node pass")
	}
	fmt.Println("  equals the single-node Study.Execute answer (IEEE-754 bits)")

	// Warm repeats: the coverage fingerprint has not moved, so the
	// snapshot cache answers — zero shard folds, and the stores were
	// never scanned at all (the rings fold materialised partials).
	folds := coord.PartialFetches()
	for i := 0; i < 3; i++ {
		if _, cached, err = coord.Query(geomob.StudyRequest{}); err != nil || !cached {
			log.Fatalf("warm repeat %d: cached=%v err=%v", i, cached, err)
		}
	}
	fmt.Printf("\n3 warm repeats: cached, %d extra shard folds, %d store scans since boot\n",
		coord.PartialFetches()-folds, storeScans(locals)-scansAfterBoot)

	// A windowed flows query exercises the same machinery per window.
	from := time.UnixMilli(tweets[0].TS).UTC()
	req := geomob.StudyRequest{
		Analyses: []geomob.Analysis{geomob.AnalysisFlows},
		Scales:   []geomob.Scale{geomob.ScaleNational},
		From:     from, To: from.AddDate(0, 1, 0),
	}
	flows, _, err := coord.Query(req)
	if err != nil {
		log.Fatal(err)
	}
	mr := flows.Mobility[geomob.ScaleNational]
	fmt.Printf("one-month national flows: total %.0f over %d OD pairs\n",
		mr.TotalFlow, mr.FlowPairs)
	if extra := storeScans(locals) - scansAfterBoot; extra != 0 {
		log.Fatalf("queries scanned the stores %d times; the rings should answer everything", extra)
	}
	fmt.Println("no query ever scanned a store: the bucket rings answered everything")
}

// storeScans sums the partitions' segment scan counters.
func storeScans(locals []*geomob.ClusterLocalShard) int64 {
	var scans int64
	for _, l := range locals {
		scans += l.Store().ScanCount()
	}
	return scans
}
