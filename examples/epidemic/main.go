// Epidemic forecasting walkthrough — the application the paper builds
// toward (§I, §V): estimate inter-city mobility from tweets, then drive a
// metapopulation SIR model to predict how an outbreak seeded in one city
// spreads across Australia, and how mobility restrictions change it.
//
// Run with:
//
//	go run ./examples/epidemic
package main

import (
	"fmt"
	"log"
	"sort"

	"geomob"
)

func main() {
	tweets, err := geomob.GenerateCorpus(geomob.DefaultCorpusConfig(20000, 13, 17))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	result, err := geomob.NewStudy(geomob.SliceSource(tweets)).Run()
	if err != nil {
		log.Fatalf("study: %v", err)
	}
	national := result.Mobility[geomob.ScaleNational]
	areas := national.Flows.Areas

	seed := -1
	for i, a := range areas {
		if a.Name == "Sydney" {
			seed = i
		}
	}
	if seed < 0 {
		log.Fatal("no Sydney in the national region set")
	}

	params := geomob.DefaultEpidemicParams()
	fmt.Printf("outbreak seeded in Sydney, R0 = %.1f, mobility from Twitter OD flows\n\n", params.R0())
	res, err := geomob.SimulateEpidemic(areas, national.Flows.Flows, seed, 10, params)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	type arrival struct {
		name string
		day  float64
	}
	var arrivals []arrival
	for i, a := range areas {
		arrivals = append(arrivals, arrival{a.Name, res.ArrivalDay[i]})
	}
	sort.Slice(arrivals, func(i, j int) bool {
		di, dj := arrivals[i].day, arrivals[j].day
		if di < 0 {
			di = 1e18
		}
		if dj < 0 {
			dj = 1e18
		}
		return di < dj
	})
	fmt.Println("arrival order (first day above 1 case / 100k residents):")
	for _, a := range arrivals {
		if a.day < 0 {
			fmt.Printf("  %-16s never\n", a.name)
		} else {
			fmt.Printf("  %-16s day %3.0f\n", a.name, a.day)
		}
	}
	fmt.Printf("\nnational peak: day %.0f (%.0f infectious), final attack rate %.1f%%\n",
		res.PeakDay, res.PeakI, res.AttackPct)

	// Counterfactual: cut mobility by 90% (travel restrictions) and compare
	// the arrival of the epidemic in Perth — the most isolated major city.
	restricted := params
	restricted.MobilityScale = params.MobilityScale / 10
	res2, err := geomob.SimulateEpidemic(areas, national.Flows.Flows, seed, 10, restricted)
	if err != nil {
		log.Fatalf("simulate restricted: %v", err)
	}
	perth := -1
	for i, a := range areas {
		if a.Name == "Perth" {
			perth = i
		}
	}
	fmt.Printf("\nwith 90%% mobility reduction: Perth arrival day %.0f → %.0f, peak day %.0f → %.0f\n",
		res.ArrivalDay[perth], res2.ArrivalDay[perth], res.PeakDay, res2.PeakDay)

	// SEIR: a two-day latent period delays everything.
	seir, err := geomob.SimulateSEIR(areas, national.Flows.Flows, seed, 10, geomob.DefaultSEIRParams())
	if err != nil {
		log.Fatalf("simulate SEIR: %v", err)
	}
	fmt.Printf("with a 2-day latent period (SEIR): peak day %.0f → %.0f\n", res.PeakDay, seir.PeakDay)

	// Stochastic ensemble from a tiny seed: outbreaks sometimes die out.
	ens, err := geomob.SimulateEpidemicEnsemble(areas, national.Flows.Flows, seed, 2, params, 100, 99, 101)
	if err != nil {
		log.Fatalf("simulate ensemble: %v", err)
	}
	fmt.Printf("\nstochastic ensemble (100 runs, 2 seed cases): %.0f%% died out; "+
		"established runs peak on day %.0f on average\n",
		ens.ExtinctShare*100, ens.MeanPeakDay)
}
